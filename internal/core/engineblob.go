package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"orchestra/internal/datalog"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Engine-snapshot blob (DESIGN.md §13): the single value under the "e/"
// keyspace that captures everything a peer accumulates outside its instance
// rows — the translation engine (through exchange.Engine.SaveState), the
// reconciliation state, the dependency tracker, the adaptive-window EWMA
// seed, and the epoch watermark the snapshot is valid at. A recovered peer
// that finds this blob restores instead of replaying: only transactions with
// epoch > the watermark re-enter the engine and the trust state.
//
// Layout (uvarint integers, uvarint-length-prefixed strings, provenance as
// the checkpoint codec's binary encodeProv bytes):
//
//	magic "OEB1"
//	watermark epoch
//	window EWMA (8 bytes, IEEE-754 bits big-endian)
//	engLen, then the exchange.Engine.SaveState blob
//	nTxns · { peer, seq, epoch, status, prio (zig-zag), full flag,
//	          [full: nUps · { rel, op, oldKey, newKey, provBytes }],
//	          nDeps · { peer, seq } }
//	nOrder · { peer, seq }             (acceptance order)
//	nWrites · { key, peer, seq, del flag, tupleKey }
//	nWriters · { key, peer, seq }      (tracker last-writer index)
//
// Accepted and Rejected graph nodes serialize as skeletons (no update
// list): reconciliation never reads their updates again — see
// recon.NeedsFullTxn — and stripping them keeps the blob proportional to
// the live conflict frontier, not the whole history.

const engineBlobMagic = "OEB1"

// engineSnapshot is the decoded form of the blob.
type engineSnapshot struct {
	Watermark uint64
	PerTxn    float64
	Engine    []byte
	State     *recon.SavedState
	Writers   []updates.SavedWriter
}

func encodeEngineBlob(watermark uint64, perTxn float64, engineBlob []byte, st *recon.SavedState, writers []updates.SavedWriter) ([]byte, error) {
	buf := append([]byte(nil), engineBlobMagic...)
	buf = binary.AppendUvarint(buf, watermark)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(perTxn))
	buf = binary.AppendUvarint(buf, uint64(len(engineBlob)))
	buf = append(buf, engineBlob...)

	buf = binary.AppendUvarint(buf, uint64(len(st.Txns)))
	for _, sv := range st.Txns {
		t := sv.Txn
		buf = appendBlobString(buf, t.ID.Peer)
		buf = binary.AppendUvarint(buf, t.ID.Seq)
		buf = binary.AppendUvarint(buf, t.Epoch)
		buf = binary.AppendUvarint(buf, uint64(sv.Status))
		buf = binary.AppendVarint(buf, int64(sv.Prio))
		if recon.NeedsFullTxn(sv.Status) {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(len(t.Updates)))
			for _, u := range t.Updates {
				buf = appendBlobString(buf, u.Rel)
				buf = append(buf, byte(u.Op))
				buf = appendBlobString(buf, tupleKeyOrEmpty(u.Old))
				buf = appendBlobString(buf, tupleKeyOrEmpty(u.New))
				pv, err := encodeProv(u.Prov)
				if err != nil {
					return nil, err
				}
				buf = binary.AppendUvarint(buf, uint64(len(pv)))
				buf = append(buf, pv...)
			}
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.Deps)))
		for _, d := range t.Deps {
			buf = appendBlobString(buf, d.Peer)
			buf = binary.AppendUvarint(buf, d.Seq)
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(st.AppliedOrder)))
	for _, id := range st.AppliedOrder {
		buf = appendBlobString(buf, id.Peer)
		buf = binary.AppendUvarint(buf, id.Seq)
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Writes)))
	for _, w := range st.Writes {
		buf = appendBlobString(buf, w.Key)
		buf = appendBlobString(buf, w.Writer.Peer)
		buf = binary.AppendUvarint(buf, w.Writer.Seq)
		if w.Del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendBlobString(buf, w.TupKey)
	}
	buf = binary.AppendUvarint(buf, uint64(len(writers)))
	for _, w := range writers {
		buf = appendBlobString(buf, w.Key)
		buf = appendBlobString(buf, w.Writer.Peer)
		buf = binary.AppendUvarint(buf, w.Writer.Seq)
	}
	return buf, nil
}

func decodeEngineBlob(blob []byte) (*engineSnapshot, error) {
	if len(blob) < len(engineBlobMagic) || string(blob[:len(engineBlobMagic)]) != engineBlobMagic {
		return nil, fmt.Errorf("core: not an engine snapshot (bad magic)")
	}
	r := &blobReader{buf: blob[len(engineBlobMagic):]}
	snap := &engineSnapshot{State: &recon.SavedState{}}
	snap.Watermark = r.uvarint()
	snap.PerTxn = math.Float64frombits(r.be64())
	snap.Engine = r.bytes()

	nTxns := r.uvarint()
	for i := uint64(0); i < nTxns && r.err == nil; i++ {
		t := &updates.Transaction{}
		t.ID.Peer = r.string()
		t.ID.Seq = r.uvarint()
		t.Epoch = r.uvarint()
		status := recon.Status(r.uvarint())
		if r.err == nil && status > recon.StatusDeferred {
			r.err = fmt.Errorf("core: engine snapshot has unknown status %d", status)
		}
		prio := int(r.varint())
		if r.byte() == 1 {
			nUps := r.uvarint()
			for j := uint64(0); j < nUps && r.err == nil; j++ {
				u := updates.Update{Rel: r.string(), Op: updates.Op(r.byte())}
				if r.err == nil && u.Op > updates.OpModify {
					r.err = fmt.Errorf("core: engine snapshot has unknown op %d", u.Op)
					break
				}
				if u.Old, r.err = parseTupleKey(r.string(), r.err); r.err != nil {
					break
				}
				if u.New, r.err = parseTupleKey(r.string(), r.err); r.err != nil {
					break
				}
				pv := r.bytes()
				if r.err != nil {
					break
				}
				if u.Prov, r.err = decodeProv(pv); r.err != nil {
					break
				}
				t.Updates = append(t.Updates, u)
			}
		}
		nDeps := r.uvarint()
		for j := uint64(0); j < nDeps && r.err == nil; j++ {
			d := updates.TxnID{Peer: r.string()}
			d.Seq = r.uvarint()
			t.Deps = append(t.Deps, d)
		}
		snap.State.Txns = append(snap.State.Txns, recon.SavedTxn{Txn: t, Status: status, Prio: prio})
	}

	nOrder := r.uvarint()
	for i := uint64(0); i < nOrder && r.err == nil; i++ {
		id := updates.TxnID{Peer: r.string()}
		id.Seq = r.uvarint()
		snap.State.AppliedOrder = append(snap.State.AppliedOrder, id)
	}
	nWrites := r.uvarint()
	for i := uint64(0); i < nWrites && r.err == nil; i++ {
		w := recon.SavedWrite{Key: r.string(), Writer: updates.TxnID{Peer: r.string()}}
		w.Writer.Seq = r.uvarint()
		w.Del = r.byte() == 1
		w.TupKey = r.string()
		snap.State.Writes = append(snap.State.Writes, w)
	}
	nWriters := r.uvarint()
	for i := uint64(0); i < nWriters && r.err == nil; i++ {
		w := updates.SavedWriter{Key: r.string(), Writer: updates.TxnID{Peer: r.string()}}
		w.Writer.Seq = r.uvarint()
		snap.Writers = append(snap.Writers, w)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after engine snapshot", len(r.buf))
	}
	return snap, nil
}

// EngineSnapshotStats summarizes the union-database section of a peer's
// durable engine snapshot without materializing it, plus the epoch watermark
// the snapshot is valid at. The boolean reports whether a snapshot exists —
// `orchestra inspect` dumps this.
func EngineSnapshotStats(db *lsm.DB, peer string) (stats datalog.DBStats, watermark uint64, ok bool, err error) {
	sn := db.Snapshot()
	defer sn.Close()
	raw, found, err := sn.Get(ekKey(peer))
	if err != nil || !found {
		return datalog.DBStats{}, 0, false, err
	}
	snap, err := decodeEngineBlob(raw)
	if err != nil {
		return datalog.DBStats{}, 0, false, err
	}
	stats, err = exchange.StatState(snap.Engine)
	if err != nil {
		return datalog.DBStats{}, 0, false, err
	}
	stats.Bytes = len(raw)
	return stats, snap.Watermark, true, nil
}

func tupleKeyOrEmpty(t schema.Tuple) string {
	if t == nil {
		return ""
	}
	return t.Key()
}

// parseTupleKey threads the sticky reader error: an empty key means a nil
// tuple (updates never carry empty tuples on their nil side; schema-level
// empty tuples do not appear in update old/new slots).
func parseTupleKey(key string, err error) (schema.Tuple, error) {
	if err != nil || key == "" {
		return nil, err
	}
	return schema.ParseTupleKey(key)
}

func appendBlobString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// blobReader is a cursor over the blob body with sticky error handling.
type blobReader struct {
	buf []byte
	err error
}

func (r *blobReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("core: truncated engine snapshot (bad varint)")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *blobReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("core: truncated engine snapshot (bad varint)")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *blobReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = fmt.Errorf("core: truncated engine snapshot (missing byte)")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *blobReader) be64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("core: truncated engine snapshot (missing word)")
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *blobReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("core: truncated engine snapshot (bytes overrun buffer)")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *blobReader) string() string { return string(r.bytes()) }
