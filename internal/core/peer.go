package core

import (
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/exchange"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/updates"
)

// Peer is one CDSS participant: a local editable instance, a public
// snapshot, a trust policy, and the machinery to publish and reconcile.
// A Peer is safe for use from one goroutine; the shared Store handles
// cross-peer concurrency.
type Peer struct {
	mu        sync.Mutex
	name      string
	sys       *System
	store     p2p.Store
	policy    *recon.Policy
	local     *storage.Instance
	published *storage.Instance
	engine    *exchange.Engine
	state     *recon.State
	tracker   *updates.Tracker
	nextSeq   uint64
	lastEpoch uint64
	// unpublished holds committed local transactions awaiting Publish.
	unpublished []*updates.Transaction
}

// NewPeer creates a participant named name with the given trust policy,
// attached to the shared update store.
func NewPeer(name string, sys *System, store p2p.Store, policy *recon.Policy) (*Peer, error) {
	s := sys.Schema(name)
	if s == nil {
		return nil, fmt.Errorf("core: system has no peer %q", name)
	}
	eng, err := exchange.NewEngine(sys.Peers(), sys.Mappings())
	if err != nil {
		return nil, err
	}
	keyOf := func(rel string, tu schema.Tuple) schema.Tuple {
		r := s.Relation(rel)
		if r == nil {
			return tu
		}
		return r.KeyOf(tu)
	}
	return &Peer{
		name:      name,
		sys:       sys,
		store:     store,
		policy:    policy,
		local:     storage.NewInstance(s),
		published: storage.NewInstance(s),
		engine:    eng,
		state:     recon.NewState(keyOf),
		tracker:   updates.NewTracker(keyOf),
		nextSeq:   1,
	}, nil
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Instance returns the local editable instance.
func (p *Peer) Instance() *storage.Instance { return p.local }

// PublishedSnapshot returns the public snapshot made at the last Publish.
func (p *Peer) PublishedSnapshot() *storage.Instance { return p.published }

// Epoch returns the last epoch this peer has reconciled up to.
func (p *Peer) Epoch() uint64 { return p.lastEpoch }

// Status returns the peer's disposition of a transaction.
func (p *Peer) Status(id updates.TxnID) recon.Status { return p.state.Status(id) }

// Txn is an in-progress local transaction. Updates accumulate and apply
// atomically at Commit.
type Txn struct {
	peer *Peer
	ups  []updates.Update
	done bool
}

// NewTransaction starts a local transaction.
func (p *Peer) NewTransaction() *Txn { return &Txn{peer: p} }

// Insert schedules an insertion.
func (t *Txn) Insert(rel string, tu schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Insert(rel, tu))
	return t
}

// Delete schedules a deletion.
func (t *Txn) Delete(rel string, tu schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Delete(rel, tu))
	return t
}

// Modify schedules a modification.
func (t *Txn) Modify(rel string, old, new schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Modify(rel, old, new))
	return t
}

// Commit validates the updates, applies them atomically to the local
// instance, and queues the transaction for the next Publish. On error
// nothing is applied.
func (t *Txn) Commit() (*updates.Transaction, error) {
	if t.done {
		return nil, fmt.Errorf("core: transaction already finished")
	}
	t.done = true
	p := t.peer
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sys.Schema(p.name)
	// Validate against the schema and the current local state.
	for _, u := range t.ups {
		rel := s.Relation(u.Rel)
		if rel == nil {
			return nil, fmt.Errorf("core: peer %s has no relation %s", p.name, u.Rel)
		}
		for _, tu := range []schema.Tuple{u.Old, u.New} {
			if tu == nil {
				continue
			}
			if err := rel.Validate(tu); err != nil {
				return nil, err
			}
		}
	}
	txn := &updates.Transaction{
		ID:      updates.TxnID{Peer: p.name, Seq: p.nextSeq},
		Updates: append([]updates.Update(nil), t.ups...),
	}
	// Dependencies: the last writers of every key this txn touches.
	p.tracker.Record(txn)
	// Apply to the local instance.
	if err := p.applyUpdates(txn.Updates); err != nil {
		return nil, err
	}
	// The peer trusts its own edits unconditionally.
	if err := p.state.AcceptLocal(txn); err != nil {
		return nil, err
	}
	p.nextSeq++
	p.unpublished = append(p.unpublished, txn)
	return txn, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// applyUpdates applies translated or local updates to the local instance.
func (p *Peer) applyUpdates(ups []updates.Update) error {
	for _, u := range ups {
		prov := u.Prov
		if prov.IsZero() {
			prov = provenance.One()
		}
		switch u.Op {
		case updates.OpInsert:
			if _, err := p.local.Upsert(u.Rel, u.New, prov); err != nil {
				return err
			}
		case updates.OpDelete:
			if _, err := p.local.Delete(u.Rel, u.Old); err != nil {
				return err
			}
		case updates.OpModify:
			if u.Old != nil {
				if _, err := p.local.Delete(u.Rel, u.Old); err != nil {
					return err
				}
			}
			if _, err := p.local.Upsert(u.Rel, u.New, prov); err != nil {
				return err
			}
		}
	}
	return nil
}

// Publish archives all committed-but-unpublished transactions in the store,
// advances the logical clock, and refreshes the public snapshot.
func (p *Peer) Publish() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.unpublished) == 0 {
		return p.store.Epoch()
	}
	epoch, err := p.store.Publish(p.unpublished)
	if err != nil {
		return 0, err
	}
	p.unpublished = nil
	// O(#relations) copy-on-write snapshot: tables are only copied if later
	// local edits touch them, so publishing is cheap even for large
	// instances.
	p.published = p.local.Snapshot()
	return epoch, nil
}

// ReconcileReport summarizes one reconciliation.
type ReconcileReport struct {
	// Epoch is the store epoch reconciled up to.
	Epoch uint64
	// Fetched counts transactions retrieved from the store this round.
	Fetched int
	// Accepted, Rejected, Deferred, Pending list candidate ids by outcome,
	// in deterministic order.
	Accepted []updates.TxnID
	Rejected []updates.TxnID
	Deferred []updates.TxnID
	Pending  []updates.TxnID
	// AppliedUpdates counts tuple-level updates applied to the local
	// instance.
	AppliedUpdates int
}

// Reconcile fetches newly published transactions from the store, translates
// them into the local schema via the mappings (maintaining provenance),
// runs the trust/conflict reconciliation, and applies the accepted
// transactions to the local instance.
func (p *Peer) Reconcile() (*ReconcileReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	txns, epoch, err := p.store.Since(p.lastEpoch)
	if err != nil {
		return nil, err
	}
	report := &ReconcileReport{Epoch: epoch, Fetched: len(txns)}
	var candidates []*updates.Transaction
	for _, txn := range txns {
		if p.engine.Applied(txn.ID) {
			continue
		}
		res, err := p.engine.Apply(txn)
		if err != nil {
			return nil, err
		}
		if txn.ID.Peer == p.name {
			// Our own published transaction coming back: already applied
			// locally at commit time.
			continue
		}
		cand := &updates.Transaction{
			ID:      txn.ID,
			Epoch:   txn.Epoch,
			Updates: res.PerPeer[p.name],
			Deps:    mergeDeps(txn.Deps, res.ExtraDeps[p.name]),
		}
		candidates = append(candidates, cand)
	}
	outcome, err := p.state.Reconcile(p.policy, candidates)
	if err != nil {
		return nil, err
	}
	if err := p.applyOutcome(outcome, report); err != nil {
		return nil, err
	}
	p.lastEpoch = epoch
	report.sort()
	return report, nil
}

// Resolve settles a deferred conflict in favor of winner (site-administrator
// action, demo scenario 4) and applies the consequences.
func (p *Peer) Resolve(winner updates.TxnID) (*ReconcileReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	outcome, err := p.state.Resolve(winner)
	if err != nil {
		return nil, err
	}
	report := &ReconcileReport{Epoch: p.lastEpoch}
	if err := p.applyOutcome(outcome, report); err != nil {
		return nil, err
	}
	report.sort()
	return report, nil
}

func (p *Peer) applyOutcome(outcome *recon.Outcome, report *ReconcileReport) error {
	for _, txn := range outcome.Accepted {
		if err := p.applyUpdates(txn.Updates); err != nil {
			return err
		}
		p.tracker.RecordWrites(txn)
		report.Accepted = append(report.Accepted, txn.ID)
		report.AppliedUpdates += len(txn.Updates)
	}
	report.Rejected = append(report.Rejected, outcome.Rejected...)
	report.Deferred = append(report.Deferred, outcome.Deferred...)
	report.Pending = append(report.Pending, outcome.Pending...)
	return nil
}

func (r *ReconcileReport) sort() {
	less := func(ids []updates.TxnID) func(i, j int) bool {
		return func(i, j int) bool { return ids[i].Less(ids[j]) }
	}
	// Accepted preserves application order; the others sort by id.
	sort.Slice(r.Rejected, less(r.Rejected))
	sort.Slice(r.Deferred, less(r.Deferred))
	sort.Slice(r.Pending, less(r.Pending))
}

func mergeDeps(a, b []updates.TxnID) []updates.TxnID {
	seen := map[updates.TxnID]bool{}
	var out []updates.TxnID
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
