package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/updates"
)

// Peer is one CDSS participant: a local editable instance, a public
// snapshot, a trust policy, and the machinery to publish and reconcile.
// A Peer is safe for use from one goroutine; the shared Store handles
// cross-peer concurrency.
type Peer struct {
	mu        sync.Mutex
	name      string
	sys       *System
	store     p2p.Store
	policy    *recon.Policy
	local     *storage.Instance
	published *storage.Instance
	engine    *exchange.Engine
	state     *recon.State
	tracker   *updates.Tracker
	nextSeq   uint64
	lastEpoch uint64
	// engCfg is retained so the engine can be rebuilt after a mid-Apply
	// failure leaves it in an undefined state (see engineDirty).
	engCfg exchange.Config
	// win sizes Reconcile's group-commit windows from observed drain
	// latency; its estimate survives engine rebuilds (the replacement engine
	// drains at the same speed the dirty one did).
	win *exchange.AdaptiveWindow
	// engineDirty marks the translation engine as unusable: an Apply
	// failed partway through a transaction (cooperative cancellation can
	// abandon a half-propagated fixpoint), which exchange.Engine declares
	// fatal. The next Reconcile rebuilds the engine by replaying the
	// published history up to lastEpoch.
	engineDirty bool
	// unpublished holds committed local transactions awaiting Publish.
	unpublished []*updates.Transaction
	// qdb mirrors the local instance as a datalog EDB for the query path:
	// queries take an O(#relations) copy-on-write snapshot of it instead of
	// copying every table row per call. It is built lazily on first query
	// and maintained incrementally by applyUpdates; qdbVersion records the
	// local-instance version the mirror matches, so out-of-band instance
	// writes (anything bypassing applyUpdates) are detected and trigger a
	// rebuild rather than stale answers. Guarded by mu.
	qdb        *datalog.DB
	qdbVersion uint64
	// db is the durable tier backing this peer (nil for in-memory systems):
	// RecoverPeerWith attaches it so Resolve can archive its decision in the
	// "r/" keyspace and rebuildEngine can restore from the last engine
	// snapshot instead of replaying the full history.
	db *lsm.DB
	// resolveSeq numbers the next archived Resolve decision; a clean
	// checkpoint folds the archive into the engine snapshot and resets it.
	resolveSeq uint64
	// pendingRecovery buffers recovery metrics until SetObserver installs
	// the registry (recovery runs before the observer exists — see
	// orchestra's System.Peer).
	pendingRecovery bool
	recReplayTxns   int64
	recLoadNs       int64
	// applyHook, when set, observes every batch of updates that reaches
	// durability or the local instance: published local transactions (at
	// Publish, with their assigned epoch) and accepted candidates (at
	// Reconcile/Resolve). It is called under the peer mutex and must not
	// call back into the peer; the orchestra facade uses it to feed change
	// subscriptions.
	applyHook func(ApplyEvent)
	// obsv is the peer's observability surface (spans, counters, slow-op
	// logging); the zero value is disabled. See SetObserver.
	obsv observer
}

// ApplyEvent is one observed transaction application; see SetApplyHook.
type ApplyEvent struct {
	// Txn is the originating (publishing) transaction.
	Txn updates.TxnID
	// Epoch is the store epoch the transaction published at.
	Epoch uint64
	// Local reports whether the transaction is this peer's own publish
	// (true) or a reconciled candidate translated into this peer's schema
	// (false).
	Local bool
	// Updates are the tuple-level changes, already in this peer's schema.
	Updates []updates.Update
}

// NewPeer creates a participant named name with the given trust policy,
// attached to the shared update store.
func NewPeer(name string, sys *System, store p2p.Store, policy *recon.Policy) (*Peer, error) {
	return NewPeerWith(name, sys, store, policy, exchange.Config{})
}

// NewPeerWith is NewPeer with explicit tuning for the peer's translation
// engine (parallelism, witness bounds, planner escape hatches).
func NewPeerWith(name string, sys *System, store p2p.Store, policy *recon.Policy, cfg exchange.Config) (*Peer, error) {
	s := sys.Schema(name)
	if s == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownPeer, name)
	}
	eng, err := exchange.NewEngineWith(sys.Peers(), sys.Mappings(), cfg)
	if err != nil {
		return nil, err
	}
	keyOf := func(rel string, tu schema.Tuple) schema.Tuple {
		r := s.Relation(rel)
		if r == nil {
			return tu
		}
		return r.KeyOf(tu)
	}
	return &Peer{
		name:      name,
		sys:       sys,
		store:     store,
		policy:    policy,
		engCfg:    cfg,
		win:       exchange.NewAdaptiveWindow(cfg.ReconcileWindow),
		local:     storage.NewInstance(s),
		published: storage.NewInstance(s),
		engine:    eng,
		state:     recon.NewState(keyOf),
		tracker:   updates.NewTracker(keyOf),
		nextSeq:   1,
	}, nil
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Instance returns the local editable instance.
func (p *Peer) Instance() *storage.Instance { return p.local }

// PublishedSnapshot returns the public snapshot made at the last Publish.
func (p *Peer) PublishedSnapshot() *storage.Instance { return p.published }

// Epoch returns the last epoch this peer has reconciled up to.
func (p *Peer) Epoch() uint64 { return p.lastEpoch }

// Status returns the peer's disposition of a transaction.
func (p *Peer) Status(id updates.TxnID) recon.Status { return p.state.Status(id) }

// SetApplyHook installs (or clears, with nil) the observer described on the
// applyHook field. The hook runs under the peer mutex; it must be fast and
// must not call back into the peer.
func (p *Peer) SetApplyHook(h func(ApplyEvent)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyHook = h
}

// Txn is an in-progress local transaction. Updates accumulate and apply
// atomically at Commit.
type Txn struct {
	peer *Peer
	ups  []updates.Update
	done bool
}

// NewTransaction starts a local transaction.
func (p *Peer) NewTransaction() *Txn { return &Txn{peer: p} }

// Insert schedules an insertion.
func (t *Txn) Insert(rel string, tu schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Insert(rel, tu))
	return t
}

// Delete schedules a deletion.
func (t *Txn) Delete(rel string, tu schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Delete(rel, tu))
	return t
}

// Modify schedules a modification.
func (t *Txn) Modify(rel string, old, new schema.Tuple) *Txn {
	t.ups = append(t.ups, updates.Modify(rel, old, new))
	return t
}

// Commit validates the updates, applies them atomically to the local
// instance, and queues the transaction for the next Publish. On error
// nothing is applied.
func (t *Txn) Commit() (*updates.Transaction, error) {
	if t.done {
		return nil, ErrTxnFinished
	}
	t.done = true
	p := t.peer
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sys.Schema(p.name)
	// Validate against the schema and the current local state.
	for _, u := range t.ups {
		rel := s.Relation(u.Rel)
		if rel == nil {
			return nil, fmt.Errorf("%w: peer %s has no relation %s", ErrUnknownRelation, p.name, u.Rel)
		}
		for _, tu := range []schema.Tuple{u.Old, u.New} {
			if tu == nil {
				continue
			}
			if err := rel.Validate(tu); err != nil {
				return nil, err
			}
		}
		// A local *insert* that collides with a stored tuple under the same
		// primary key is a key violation — unlike Modify, which declares the
		// overwrite, or translated candidates, which reconciliation has
		// already vetted and applies with upsert semantics.
		if u.Op == updates.OpInsert {
			if row, ok := p.local.Table(u.Rel).GetByKey(rel.KeyOf(u.New)); ok && !row.Tuple.Equal(u.New) {
				return nil, fmt.Errorf("core: commit at peer %s: %w", p.name,
					&storage.ErrKeyViolation{Relation: u.Rel, Key: rel.KeyOf(u.New), Existing: row.Tuple, New: u.New})
			}
		}
	}
	txn := &updates.Transaction{
		ID:      updates.TxnID{Peer: p.name, Seq: p.nextSeq},
		Updates: append([]updates.Update(nil), t.ups...),
	}
	// Dependencies: the last writers of every key this txn touches.
	p.tracker.Record(txn)
	// Apply to the local instance.
	if err := p.applyUpdates(txn.Updates); err != nil {
		return nil, err
	}
	// The peer trusts its own edits unconditionally.
	if err := p.state.AcceptLocal(txn); err != nil {
		return nil, err
	}
	p.nextSeq++
	p.unpublished = append(p.unpublished, txn)
	return txn, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// applyUpdates applies translated or local updates to the local instance,
// keeping the query mirror in lockstep when one is live.
func (p *Peer) applyUpdates(ups []updates.Update) error {
	for _, u := range ups {
		prov := u.Prov
		if prov.IsZero() {
			prov = provenance.One()
		}
		sync := p.mirrorInSync()
		switch u.Op {
		case updates.OpInsert:
			replaced, err := p.local.Upsert(u.Rel, u.New, prov)
			if err != nil {
				return err
			}
			if sync {
				p.mirrorUpsert(u.Rel, u.New, replaced)
			}
		case updates.OpDelete:
			if _, err := p.local.Delete(u.Rel, u.Old); err != nil {
				return err
			}
			if sync {
				p.mirrorDelete(u.Rel, u.Old)
			}
		case updates.OpModify:
			if u.Old != nil {
				if _, err := p.local.Delete(u.Rel, u.Old); err != nil {
					return err
				}
				if sync {
					p.mirrorDelete(u.Rel, u.Old)
				}
			}
			sync = p.mirrorInSync()
			replaced, err := p.local.Upsert(u.Rel, u.New, prov)
			if err != nil {
				return err
			}
			if sync {
				p.mirrorUpsert(u.Rel, u.New, replaced)
			}
		}
	}
	return nil
}

// mirrorInSync reports whether the query mirror exists and matches the
// local instance exactly (no out-of-band writes since it was last synced).
// Callers must hold p.mu.
func (p *Peer) mirrorInSync() bool {
	return p.qdb != nil && p.qdbVersion == p.local.Version()
}

// mirrorAdvance accounts one instance write in the mirror's version: if
// anything else wrote the instance between the peer's write and this
// bookkeeping (an out-of-band writer does not hold p.mu), the observed
// version is not exactly one ahead and the mirror is dropped rather than
// silently absorbing the foreign write's version. It reports whether the
// mirror is still authoritative.
func (p *Peer) mirrorAdvance() bool {
	if v := p.local.Version(); v != p.qdbVersion+1 {
		p.qdb = nil
		return false
	}
	p.qdbVersion++
	return true
}

// mirrorUpsert folds one applied upsert into the query mirror: the
// key-replaced tuple (if any) leaves, and the stored row's exact merged
// annotation is copied over. Callers must hold p.mu and have verified
// mirrorInSync before the instance write.
func (p *Peer) mirrorUpsert(rel string, tu schema.Tuple, replaced *schema.Tuple) {
	if !p.mirrorAdvance() {
		return
	}
	if replaced != nil {
		p.qdb.Remove(rel, *replaced)
	}
	if row, ok := p.local.Table(rel).Get(tu); ok {
		p.qdb.Set(rel, tu, row.Prov)
	}
}

// mirrorDelete folds one applied delete into the query mirror.
func (p *Peer) mirrorDelete(rel string, tu schema.Tuple) {
	if !p.mirrorAdvance() {
		return
	}
	p.qdb.Remove(rel, tu)
}

// queryEDB returns the local instance as a datalog EDB in O(#relations):
// a copy-on-write snapshot of the maintained mirror, rebuilt only on first
// use or after an out-of-band instance write. The rebuild is lazy per
// relation: each extent is declared with a fill that scans a COW snapshot
// of the instance, so a query materializes only the relations its plan
// reaches, and the incremental maintenance in mirrorUpsert/mirrorDelete
// composes with it (a delta for an unmaterialized relation first pulls the
// snapshot rows, then applies on top). Evaluation derives into its own
// extents, so the mirror itself is never mutated by a query. Callers must
// hold p.mu.
func (p *Peer) queryEDB() *datalog.DB {
	if !p.mirrorInSync() {
		// Capture the version before snapshotting: an out-of-band write
		// racing the snapshot then leaves qdbVersion behind Version(), so the
		// next query rebuilds instead of trusting a possibly torn mirror.
		v := p.local.Version()
		snap := p.local.Snapshot()
		db := datalog.NewDB()
		s := p.sys.Schema(p.name)
		for _, rel := range s.Relations() {
			name := rel.Name
			db.SetLazy(name, func(add func(schema.Tuple, provenance.Poly)) {
				rows, _ := snap.Rows(name)
				for _, row := range rows {
					add(row.Tuple, row.Prov)
				}
			})
		}
		p.qdb = db
		p.qdbVersion = v
	}
	return p.qdb.Snapshot()
}

// Publish archives all committed-but-unpublished transactions in the store,
// advances the logical clock, and refreshes the public snapshot. The
// context is checked before the store round-trip; a store backed by the
// network should additionally bound its own I/O.
func (p *Peer) Publish(ctx context.Context) (uint64, error) {
	epoch, _, err := p.PublishAll(ctx)
	return epoch, err
}

// PublishAll is Publish reporting how many transactions were archived, so
// callers (the orchestra facade's subscription push path) can tell a no-op
// publish from a real one.
func (p *Peer) PublishAll(ctx context.Context) (uint64, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if len(p.unpublished) == 0 {
		epoch, err := p.store.Epoch()
		return epoch, 0, err
	}
	sp := p.obsv.startSpan("core_publish", p.name)
	defer p.obsv.endSpan(sp, p.name)
	p.obsv.publishes.Inc()
	published := p.unpublished
	epoch, err := p.store.Publish(published)
	if err != nil {
		return 0, 0, err
	}
	p.unpublished = nil
	p.obsv.publishedTx.Add(int64(len(published)))
	// O(#relations) copy-on-write snapshot: tables are only copied if later
	// local edits touch them, so publishing is cheap even for large
	// instances.
	p.published = p.local.Snapshot()
	if p.applyHook != nil {
		for _, txn := range published {
			p.applyHook(ApplyEvent{Txn: txn.ID, Epoch: txn.Epoch, Local: true, Updates: txn.Updates})
		}
	}
	return epoch, len(published), nil
}

// ReconcileReport summarizes one reconciliation.
type ReconcileReport struct {
	// Epoch is the store epoch reconciled up to.
	Epoch uint64
	// Fetched counts transactions retrieved from the store this round.
	Fetched int
	// Accepted, Rejected, Deferred, Pending list candidate ids by outcome,
	// in deterministic order.
	Accepted []updates.TxnID
	Rejected []updates.TxnID
	Deferred []updates.TxnID
	Pending  []updates.TxnID
	// AppliedUpdates counts tuple-level updates applied to the local
	// instance.
	AppliedUpdates int
}

// Reconcile fetches newly published transactions from the store, translates
// them into the local schema via the mappings (maintaining provenance),
// runs the trust/conflict reconciliation, and applies the accepted
// transactions to the local instance. The context bounds the translation
// fixpoints: a reconciliation started with an expired context returns the
// context error before touching the local instance, and a long chase stops
// within one fixpoint iteration of cancellation.
func (p *Peer) Reconcile(ctx context.Context) (*ReconcileReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := p.obsv.startSpan("core_reconcile", p.name)
	defer p.obsv.endSpan(sp, p.name)
	p.obsv.reconciles.Inc()
	defer p.obsv.observeRounds(p.obsv.roundsNow())
	if p.engineDirty {
		if err := p.rebuildEngine(ctx); err != nil {
			return nil, err
		}
	}
	txns, epoch, err := p.store.Since(p.lastEpoch)
	if err != nil {
		return nil, err
	}
	report := &ReconcileReport{Epoch: epoch, Fetched: len(txns)}
	fresh := txns[:0:0]
	for _, txn := range txns {
		if !p.engine.Applied(txn.ID) {
			fresh = append(fresh, txn)
		}
	}
	// Group-commit: the fetched backlog translates through one seeded
	// fixpoint per insert-only run (exchange.Engine.ApplyAll) instead of one
	// per transaction, which is what lets the subscription push pump
	// coalesce publication bursts. The backlog feeds through in windows
	// sized by observed drain latency (exchange.AdaptiveWindow): ApplyAll
	// over consecutive sub-batches is defined to equal one batched call, so
	// windowing bounds each fixpoint's working set without changing results.
	results := make([]*exchange.Result, 0, len(fresh))
	for rest := fresh; len(rest) > 0; {
		n := p.win.Next(len(rest))
		dsp := sp.Child("exchange_drain")
		start := time.Now()
		rs, err := p.engine.ApplyAll(ctx, rest[:n])
		if err != nil {
			// ApplyAll can fail partway through the batch (cooperative
			// cancellation abandons a half-propagated fixpoint), which the
			// engine declares fatal: mark it for rebuild rather than ever
			// re-using the partial state.
			p.engineDirty = true
			return nil, err
		}
		elapsed := time.Since(start)
		p.win.Observe(n, elapsed)
		dsp.End()
		p.obsv.observeDrain(p.win, n, elapsed)
		results = append(results, rs...)
		rest = rest[n:]
	}
	var candidates []*updates.Transaction
	for i, txn := range fresh {
		if txn.ID.Peer == p.name {
			// Our own published transaction coming back: already applied
			// locally at commit time.
			continue
		}
		cand := &updates.Transaction{
			ID:      txn.ID,
			Epoch:   txn.Epoch,
			Updates: results[i].PerPeer[p.name],
			Deps:    mergeDeps(txn.Deps, results[i].ExtraDeps[p.name]),
		}
		candidates = append(candidates, cand)
	}
	outcome, err := p.state.Reconcile(p.policy, candidates)
	if err != nil {
		return nil, err
	}
	if err := p.applyOutcome(outcome, report); err != nil {
		return nil, err
	}
	p.lastEpoch = epoch
	report.sort()
	return report, nil
}

// rebuildEngine replaces a dirty translation engine with a fresh one. On a
// durable peer it restores the last engine snapshot first and replays only
// the published suffix between the snapshot's watermark and lastEpoch;
// without a usable snapshot it replays the whole history up to lastEpoch
// (those transactions already reached reconciliation in completed rounds;
// everything later re-enters through the normal Reconcile loop, which also
// regenerates its candidates). Called under the peer mutex. If the replay
// itself fails — e.g. the caller's deadline expires again — the engine
// stays dirty and the next Reconcile retries the rebuild.
func (p *Peer) rebuildEngine(ctx context.Context) error {
	eng, err := exchange.NewEngineWith(p.sys.Peers(), p.sys.Mappings(), p.engCfg)
	if err != nil {
		return err
	}
	since := uint64(0)
	if p.db != nil {
		sn := p.db.Snapshot()
		raw, ok, gerr := sn.Get(ekKey(p.name))
		sn.Close()
		if gerr == nil && ok {
			// Best-effort: a snapshot that fails to decode or load just
			// leaves the fresh engine on the full-replay path.
			if snap, derr := decodeEngineBlob(raw); derr == nil && snap.Watermark <= p.lastEpoch {
				if eng.LoadState(snap.Engine) == nil {
					since = snap.Watermark
				}
			}
		}
	}
	txns, _, err := p.store.Since(since)
	if err != nil {
		return err
	}
	replay := txns[:0:0]
	for _, txn := range txns {
		if txn.Epoch > p.lastEpoch {
			break
		}
		replay = append(replay, txn)
	}
	if _, err := eng.ApplyAll(ctx, replay); err != nil {
		return err
	}
	p.engine = eng
	p.engineDirty = false
	return nil
}

// Resolve settles a deferred conflict in favor of winner (site-administrator
// action, demo scenario 4) and applies the consequences. On a durable peer
// the decision is archived with one fsynced write before Resolve returns,
// so a crash after Resolve cannot regress the conflict to deferred: recovery
// re-applies the archived decision at its recorded position. A crash during
// Resolve — after the in-memory application but before the fsync — loses
// the decision, exactly as it would have lost a Resolve that never ran.
func (p *Peer) Resolve(ctx context.Context, winner updates.TxnID) (*ReconcileReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	outcome, err := p.state.Resolve(winner)
	if err != nil {
		return nil, err
	}
	report := &ReconcileReport{Epoch: p.lastEpoch}
	if err := p.applyOutcome(outcome, report); err != nil {
		return nil, err
	}
	if p.db != nil {
		data, err := json.Marshal(resolveDecision{
			WinnerPeer: winner.Peer,
			WinnerSeq:  winner.Seq,
			AfterEpoch: p.lastEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("core: archive resolve at %s: %w", p.name, err)
		}
		b := lsm.NewBatch()
		b.Put(rkKey(p.name, p.resolveSeq), data)
		if err := p.db.Apply(b, true); err != nil {
			return nil, fmt.Errorf("core: archive resolve at %s: %w", p.name, err)
		}
		p.resolveSeq++
	}
	report.sort()
	return report, nil
}

func (p *Peer) applyOutcome(outcome *recon.Outcome, report *ReconcileReport) error {
	for _, txn := range outcome.Accepted {
		if err := p.applyUpdates(txn.Updates); err != nil {
			return err
		}
		p.tracker.RecordWrites(txn)
		if p.applyHook != nil {
			p.applyHook(ApplyEvent{Txn: txn.ID, Epoch: txn.Epoch, Local: false, Updates: txn.Updates})
		}
		p.obsv.acceptedTx.Inc()
		p.obsv.appliedUps.Add(int64(len(txn.Updates)))
		report.Accepted = append(report.Accepted, txn.ID)
		report.AppliedUpdates += len(txn.Updates)
	}
	report.Rejected = append(report.Rejected, outcome.Rejected...)
	report.Deferred = append(report.Deferred, outcome.Deferred...)
	report.Pending = append(report.Pending, outcome.Pending...)
	return nil
}

func (r *ReconcileReport) sort() {
	less := func(ids []updates.TxnID) func(i, j int) bool {
		return func(i, j int) bool { return ids[i].Less(ids[j]) }
	}
	// Accepted preserves application order; the others sort by id.
	sort.Slice(r.Rejected, less(r.Rejected))
	sort.Slice(r.Deferred, less(r.Deferred))
	sort.Slice(r.Pending, less(r.Pending))
}

func mergeDeps(a, b []updates.TxnID) []updates.TxnID {
	seen := map[updates.TxnID]bool{}
	var out []updates.TxnID
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
