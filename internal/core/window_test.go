package core

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/exchange"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

// TestReconcileWindowEquivalence drains the same publication burst through
// peers configured with every ReconcileWindow shape — per-transaction
// windows, a small fixed window, adaptive, and the whole backlog at once —
// and checks they all converge to the identical instance. This is the
// windowed counterpart of the batched==sequential property: ApplyAll over
// consecutive sub-batches must equal one batched call.
func TestReconcileWindowEquivalence(t *testing.T) {
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	alaska, err := NewPeer(workload.Alaska, sys, store, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	// One multi-epoch burst: several published transactions across the
	// mapped relations, so windows of size 1 and 2 genuinely split it.
	for i := int64(0); i < 7; i++ {
		commit(t, alaska.NewTransaction().
			Insert("O", workload.OTuple(fmt.Sprintf("org%d", i), i)).
			Insert("P", workload.PTuple(fmt.Sprintf("prot%d", i), 100+i)).
			Insert("S", workload.STuple(i, 100+i, "ACGT")))
		publish(t, alaska)
	}

	windows := []int{1, 2, 0, -1}
	receivers := make([]*Peer, len(windows))
	for i, win := range windows {
		p, err := NewPeerWith(workload.Beijing, sys, store, recon.TrustAll(1),
			exchange.Config{ReconcileWindow: win})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Reconcile(context.Background())
		if err != nil {
			t.Fatalf("window %d: %v", win, err)
		}
		if rep.Fetched != 7 || len(rep.Accepted) != 7 {
			t.Fatalf("window %d: fetched %d accepted %d, want 7/7", win, rep.Fetched, len(rep.Accepted))
		}
		receivers[i] = p
	}
	for i := 1; i < len(receivers); i++ {
		if !receivers[0].Instance().Equal(receivers[i].Instance()) {
			t.Errorf("window %d instance (size %d) differs from window %d (size %d)",
				windows[i], receivers[i].Instance().Size(),
				windows[0], receivers[0].Instance().Size())
		}
	}
	if n := receivers[0].Instance().Table("O").Len(); n != 7 {
		t.Errorf("O has %d tuples, want 7", n)
	}
}

// TestReconcileWindowAcrossRounds checks a fixed tiny window keeps working
// over multiple Reconcile rounds with interleaved publishes (the window
// state persists on the peer between rounds).
func TestReconcileWindowAcrossRounds(t *testing.T) {
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	alaska, err := NewPeer(workload.Alaska, sys, store, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	beijing, err := NewPeerWith(workload.Beijing, sys, store, recon.TrustAll(1),
		exchange.Config{ReconcileWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := int64(0); i < 3; i++ {
			commit(t, alaska.NewTransaction().
				Insert("O", workload.OTuple(fmt.Sprintf("r%d-o%d", round, i), int64(round)*10+i)))
			publish(t, alaska)
		}
		rep := reconcile(t, beijing)
		if rep.Fetched != 3 || len(rep.Accepted) != 3 {
			t.Fatalf("round %d: fetched %d accepted %d, want 3/3", round, rep.Fetched, len(rep.Accepted))
		}
	}
	if n := beijing.Instance().Table("O").Len(); n != 9 {
		t.Errorf("O has %d tuples after 3 rounds, want 9", n)
	}
}
