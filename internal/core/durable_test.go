package core

// The durable-peer contract: a peer that checkpoints into the LSM tier and
// crashes recovers — via RecoverPeerWith — to a state indistinguishable from
// having processed the same published history live. These tests pin that
// equivalence structurally (instance rows + provenance), behaviorally
// (sequence numbers, trust statuses, the unpublished queue), and under a
// randomized workload against an in-memory oracle system.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// requireEqualWithProvenance compares two instances row by row, including
// the provenance polynomials Instance.Equal deliberately ignores: a durable
// peer must recover identical annotations, not just identical tuples.
func requireEqualWithProvenance(t *testing.T, label string, sch *schema.Schema, a, b *storage.Instance) {
	t.Helper()
	if !a.Equal(b) {
		t.Fatalf("%s: instances differ: %d vs %d tuples", label, a.Size(), b.Size())
	}
	for _, rel := range sch.Relations() {
		ra, _ := a.Rows(rel.Name)
		rb, _ := b.Rows(rel.Name)
		if len(ra) != len(rb) {
			t.Fatalf("%s: %s: %d vs %d rows", label, rel.Name, len(ra), len(rb))
		}
		for i := range ra {
			// Rows come back tuple-sorted, so same index = same tuple.
			if !ra[i].Prov.Equal(rb[i].Prov) {
				t.Fatalf("%s: %s %v: provenance %v vs %v",
					label, rel.Name, ra[i].Tuple, ra[i].Prov, rb[i].Prov)
			}
		}
	}
}

// openDurableTier opens (or reopens) the shared LSM database and the
// archive store inside it.
func openDurableTier(t *testing.T, dir string) (*lsm.DB, *p2p.DurableStore) {
	t.Helper()
	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p2p.NewDurableStore(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ds
}

func checkpoint(t *testing.T, p *Peer, db *lsm.DB) {
	t.Helper()
	if err := p.SaveCheckpoint(db); err != nil {
		t.Fatal(err)
	}
}

func recoverPeer(t *testing.T, name string, store p2p.Store, policy *recon.Policy, db *lsm.DB) *Peer {
	t.Helper()
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	p, err := RecoverPeerWith(context.Background(), name, sys, store, policy, exchange.Config{}, db)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDurablePeerKillRestartEquivalence: a full history — foreign publishes
// before and after the checkpoint, own publishes straddling it, and an own
// transaction that was unpublished at checkpoint time but published before
// the crash. The recovered peer must equal the live one in instance state,
// epoch, trust statuses, and next sequence number.
func TestDurablePeerKillRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	dresden, err := NewPeer(workload.Dresden, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}

	// Pre-checkpoint history: a foreign publish, a reconcile, an own publish.
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")))
	publish(t, alaska)
	reconcile(t, dresden)
	ownA := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("rat", "brca1", "TTTT")))
	publish(t, dresden)
	reconcile(t, dresden)
	// Committed but NOT yet published when the checkpoint is cut.
	ownB := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("fly", "dscam", "GGGG")))
	checkpoint(t, dresden, db)

	// Post-checkpoint: more foreign history, then ownB publishes along with
	// a fresh post-checkpoint commit.
	commit(t, alaska.NewTransaction().
		Modify("S", workload.STuple(1, 10, "AAAA"), workload.STuple(1, 10, "CCCC")))
	publish(t, alaska)
	reconcile(t, dresden)
	ownC := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("worm", "lin28", "ACAC")))
	publish(t, dresden)
	reconcile(t, dresden)

	// Kill: everything in memory is gone; only the LSM directory survives.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, ds2 := openDurableTier(t, dir)
	defer db2.Close()
	dresden2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)

	requireEqualWithProvenance(t, "kill-restart", sys.Schema(workload.Dresden),
		dresden.Instance(), dresden2.Instance())
	if dresden2.Epoch() != dresden.Epoch() {
		t.Errorf("epoch: recovered %d, live %d", dresden2.Epoch(), dresden.Epoch())
	}
	for _, id := range []updates.TxnID{ownA.ID, ownB.ID, ownC.ID} {
		if got, want := dresden2.Status(id), dresden.Status(id); got != want {
			t.Errorf("status of %v: recovered %v, live %v", id, got, want)
		}
	}
	// The sequence counter resumes exactly where the live peer's stood.
	next := commit(t, dresden2.NewTransaction().Insert("OPS", workload.OPSTuple("yeast", "gal4", "AGAG")))
	if next.ID.Seq != ownC.ID.Seq+1 {
		t.Errorf("next seq = %d, want %d", next.ID.Seq, ownC.ID.Seq+1)
	}
	// And the recovered peer keeps participating: publish, then a second
	// recovery of another peer sees the new write.
	publish(t, dresden2)
	alaska2 := recoverPeer(t, workload.Alaska, ds2, recon.TrustAll(1), db2)
	reconcile(t, alaska2)
	if !alaska2.Instance().Contains("O", workload.OTuple("yeast", 0)) &&
		alaska2.Instance().Size() == 0 {
		t.Error("recovered alaska saw nothing")
	}
}

// TestRecoverRestoresUnpublishedQueue: a transaction committed before the
// checkpoint but never published survives the crash in the checkpoint and
// is publishable after recovery.
func TestRecoverRestoresUnpublishedQueue(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	dresden, err := NewPeer(workload.Dresden, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	published := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("mouse", "p53", "AAAA")))
	publish(t, dresden)
	reconcile(t, dresden)
	queued := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("rat", "brca1", "TTTT")))
	checkpoint(t, dresden, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, ds2 := openDurableTier(t, dir)
	defer db2.Close()
	dresden2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)
	// The queued write's effects are in the recovered instance...
	if !dresden2.Instance().Contains("OPS", workload.OPSTuple("rat", "brca1", "TTTT")) {
		t.Fatal("unpublished write lost from instance")
	}
	// ...its trust decision survives...
	if dresden2.Status(queued.ID) != dresden2.Status(published.ID) {
		t.Errorf("queued txn status %v != published txn status %v",
			dresden2.Status(queued.ID), dresden2.Status(published.ID))
	}
	// ...and the queue itself is intact: the next Publish archives it.
	epoch, n, err := dresden2.PublishAll(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("publish after recovery: epoch %d, %d txns, %v", epoch, n, err)
	}
	txns, _, err := ds2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	last := txns[len(txns)-1]
	if last.ID != queued.ID {
		t.Errorf("archived %v, want %v", last.ID, queued.ID)
	}
}

// TestRecoverWithoutCheckpoint: no checkpoint was ever taken; recovery
// degenerates to a full replay and still equals the live peer.
func TestRecoverWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	defer db.Close()
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	beijing, err := NewPeer(workload.Beijing, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	reconcile(t, beijing)
	commit(t, beijing.NewTransaction().
		Modify("S", workload.STuple(1, 10, "ACGT"), workload.STuple(1, 10, "TGCA")))
	publish(t, beijing)
	reconcile(t, alaska)

	alaska2 := recoverPeer(t, workload.Alaska, ds, recon.TrustAll(1), db)
	if !alaska2.Instance().Equal(alaska.Instance()) {
		t.Fatalf("recovered (%d tuples) != live (%d tuples)",
			alaska2.Instance().Size(), alaska.Instance().Size())
	}
	if alaska2.Epoch() != alaska.Epoch() {
		t.Errorf("epoch: %d vs %d", alaska2.Epoch(), alaska.Epoch())
	}
}

// TestRecoverAfterUncleanCrash: the database is never closed — the crash
// leaves only what the WAL fsyncs made durable. Publish and SaveCheckpoint
// both sync, so a copy of the directory taken mid-flight must recover the
// full acknowledged state through WAL replay.
func TestRecoverAfterUncleanCrash(t *testing.T) {
	src := t.TempDir()
	db, ds := openDurableTier(t, src)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	dresden, err := NewPeer(workload.Dresden, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("mouse", "p53", "AAAA")))
	publish(t, dresden)
	reconcile(t, dresden)
	checkpoint(t, dresden, db)
	commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("rat", "brca1", "TTTT")))
	publish(t, dresden)
	reconcile(t, dresden)
	// Simulated power cut: copy the directory while the DB is still open
	// (db deliberately leaked — its state is the synced WAL).
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db2, ds2 := openDurableTier(t, dst)
	defer db2.Close()
	dresden2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)
	if !dresden2.Instance().Equal(dresden.Instance()) {
		t.Fatalf("unclean-crash recovery: %d tuples, live has %d",
			dresden2.Instance().Size(), dresden.Instance().Size())
	}
	if dresden2.Epoch() != dresden.Epoch() {
		t.Errorf("epoch: %d vs %d", dresden2.Epoch(), dresden.Epoch())
	}
}

// TestCheckpointEDBServesCheckpointRows: the checkpoint doubles as a
// queryable EDB — relations materialize lazily off LSM range scans and
// match the instance that was checkpointed.
func TestCheckpointEDBServesCheckpointRows(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	defer db.Close()
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	dresden, err := NewPeer(workload.Dresden, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}

	// Before any checkpoint: no meta record.
	if _, release, found, err := CheckpointEDB(db, workload.Dresden, sys.Schema(workload.Dresden)); err != nil {
		t.Fatal(err)
	} else {
		release()
		if found {
			t.Error("phantom checkpoint found")
		}
	}

	commit(t, dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("mouse", "p53", "AAAA")).
		Insert("OPS", workload.OPSTuple("rat", "brca1", "TTTT")))
	checkpoint(t, dresden, db)

	edb, release, found, err := CheckpointEDB(db, workload.Dresden, sys.Schema(workload.Dresden))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if !found {
		t.Fatal("checkpoint not found")
	}
	rel := edb.Rel("OPS")
	if rel == nil || rel.Len() != 2 {
		t.Fatalf("OPS extent: %v", rel)
	}
	for _, tu := range []string{"mouse", "rat"} {
		want := workload.OPSTuple(tu, map[string]string{"mouse": "p53", "rat": "brca1"}[tu],
			map[string]string{"mouse": "AAAA", "rat": "TTTT"}[tu])
		fact, ok := rel.Get(want)
		if !ok {
			t.Fatalf("missing %v", want)
		}
		// Annotations round-trip through the wire codec.
		row, _ := dresden.Instance().Table("OPS").Get(want)
		if !fact.Prov.Equal(row.Prov) {
			t.Errorf("provenance of %v: %v != %v", want, fact.Prov, row.Prov)
		}
	}
}

// TestQuickDurableMatchesMemoryOracle: the same randomized insert-only
// workload drives two systems — one over a MemoryStore, one over the LSM
// tier with periodic checkpoints and a kill-and-restart of a random durable
// peer between rounds. Every surviving pair of same-named peers must hold
// identical instances at the end.
func TestQuickDurableMatchesMemoryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 3; trial++ {
		topo := workload.Chain(3)
		sysM, err := NewSystem(topo.Peers, topo.Mappings)
		if err != nil {
			t.Fatal(err)
		}
		sysD, err := NewSystem(topo.Peers, topo.Mappings)
		if err != nil {
			t.Fatal(err)
		}
		memStore := p2p.NewMemoryStore()
		dir := t.TempDir()
		db, durStore := openDurableTier(t, dir)

		memPeers := map[string]*Peer{}
		durPeers := map[string]*Peer{}
		for _, name := range topo.Names {
			mp, err := NewPeer(name, sysM, memStore, recon.TrustAll(1))
			if err != nil {
				t.Fatal(err)
			}
			memPeers[name] = mp
			dp, err := NewPeer(name, sysD, durStore, recon.TrustAll(1))
			if err != nil {
				t.Fatal(err)
			}
			durPeers[name] = dp
		}

		key := int64(trial * 10000)
		for round := 0; round < 4; round++ {
			for _, name := range topo.Names {
				n := rng.Intn(3) + 1
				base := key
				for _, p := range []*Peer{memPeers[name], durPeers[name]} {
					k := base
					tx := p.NewTransaction()
					for j := 0; j < n; j++ {
						tx.Insert("S", workload.STuple(k, k, workload.Sequence(k, k)))
						k++
					}
					if _, err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					if _, err := p.Publish(context.Background()); err != nil {
						t.Fatal(err)
					}
					key = k
				}
			}
			for _, i := range rng.Perm(len(topo.Names)) {
				name := topo.Names[i]
				reconcile(t, memPeers[name])
				reconcile(t, durPeers[name])
			}
			// Crash-and-recover one durable peer between rounds.
			victim := topo.Names[rng.Intn(len(topo.Names))]
			checkpoint(t, durPeers[victim], db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, durStore = openDurableTier(t, dir)
			// Every peer re-attaches to the reopened store through recovery:
			// the victim from its checkpoint, the others from the archive
			// alone (no checkpoint — full replay, which also restores their
			// sequence counters from their own published history).
			for _, name := range topo.Names {
				p, err := RecoverPeerWith(context.Background(), name, sysD, durStore, recon.TrustAll(1), exchange.Config{}, db)
				if err != nil {
					t.Fatal(err)
				}
				durPeers[name] = p
			}
		}
		for _, p := range memPeers {
			reconcile(t, p)
		}
		for _, p := range durPeers {
			reconcile(t, p)
		}
		for _, name := range topo.Names {
			requireEqualWithProvenance(t, fmt.Sprintf("trial %d: %s", trial, name),
				sysM.Schema(name), memPeers[name].Instance(), durPeers[name].Instance())
		}
		db.Close()
	}
}
