package core

import (
	"context"
	"errors"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

func TestQueryJoin(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("O", workload.OTuple("rat", 2)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))

	// Organisms with a known sequence for p53.
	q := Query{
		Select: []string{"org", "seq"},
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("O", datalog.V("org"), datalog.V("oid"))),
			datalog.Pos(datalog.NewAtom("P", datalog.C(schema.String("p53")), datalog.V("pid"))),
			datalog.Pos(datalog.NewAtom("S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
		},
	}
	ans, err := alaska.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("answers = %v", ans)
	}
	if !ans[0].Tuple.Equal(schema.NewTuple(schema.String("mouse"), schema.String("ACGT"))) {
		t.Errorf("answer = %v", ans[0].Tuple)
	}
	if ans[0].Prov.IsZero() {
		t.Error("answer has no provenance")
	}
}

func TestQueryNegationAndBuiltin(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("O", workload.OTuple("rat", 2)).
		Insert("S", workload.STuple(1, 10, "ACGT")))

	// Organisms with oid < 5 that have NO sequence entry for pid 10.
	q := Query{
		Select: []string{"org"},
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("O", datalog.V("org"), datalog.V("oid"))),
			datalog.Cmp(datalog.V("oid"), datalog.OpLt, datalog.C(schema.Int(5))),
			datalog.Neg(datalog.NewAtom("S", datalog.V("oid"), datalog.C(schema.Int(10)), datalog.V("seq"))),
		},
	}
	// Negated atom has an unbound variable seq — unsafe; expect an error.
	if _, err := alaska.Query(context.Background(), q); err == nil {
		t.Fatal("unsafe query accepted")
	}
	// Bind seq via a constant instead.
	q.Body[2] = datalog.Neg(datalog.NewAtom("S", datalog.V("oid"), datalog.C(schema.Int(10)), datalog.C(schema.String("ACGT"))))
	ans, err := alaska.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Tuple[0].Equal(schema.String("rat")) {
		t.Errorf("answers = %v", ans)
	}
}

func TestQueryValidation(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	if _, err := alaska.Query(context.Background(), Query{}); err == nil {
		t.Error("empty select accepted")
	}
	// Unknown relation: evaluates over an empty extent, no answers.
	ans, err := alaska.Query(context.Background(), Query{
		Select: []string{"x"},
		Body:   []datalog.Literal{datalog.Pos(datalog.NewAtom("NOPE", datalog.V("x")))},
	})
	if err != nil || len(ans) != 0 {
		t.Errorf("unknown relation: %v %v", ans, err)
	}
}

// QueryGoal with view rules: a recursive same-organism closure over S,
// goal-directed from a bound oid, must agree with the full fixpoint on
// tuples and provenance.
func TestQueryGoalRecursiveView(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	tx := alaska.NewTransaction()
	// Chain 1 -> 2 -> 3 -> 4 via "links" expressed as S rows; oid column
	// links to pid column.
	for i := int64(1); i < 5; i++ {
		tx.Insert("S", workload.STuple(i, i+1, "ACGT"))
	}
	tx.Insert("S", workload.STuple(10, 11, "TTTT")) // disconnected
	commit(t, tx)

	rules := []datalog.Rule{
		{
			ID:   "l0",
			Head: datalog.NewHead("linked", datalog.HV("a"), datalog.HV("b")),
			Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("S", datalog.V("a"), datalog.V("b"), datalog.V("s")))},
		},
		{
			ID:   "l1",
			Head: datalog.NewHead("linked", datalog.HV("a"), datalog.HV("c")),
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom("linked", datalog.V("a"), datalog.V("b"))),
				datalog.Pos(datalog.NewAtom("S", datalog.V("b"), datalog.V("c"), datalog.V("s"))),
			},
		},
	}
	gq := GoalQuery{
		Goal:  datalog.NewAtom("linked", datalog.C(schema.Int(1)), datalog.V("x")),
		Rules: rules,
	}
	goalAns, err := alaska.QueryGoal(context.Background(), gq)
	if err != nil {
		t.Fatal(err)
	}
	gq.Mode = FullFixpoint
	fullAns, err := alaska.QueryGoal(context.Background(), gq)
	if err != nil {
		t.Fatal(err)
	}
	if len(goalAns) != 4 { // 2, 3, 4, 5
		t.Fatalf("answers = %v", goalAns)
	}
	if len(fullAns) != len(goalAns) {
		t.Fatalf("full fixpoint diverges: %v vs %v", fullAns, goalAns)
	}
	for i := range goalAns {
		if !goalAns[i].Tuple.Equal(fullAns[i].Tuple) || !goalAns[i].Prov.Equal(fullAns[i].Prov) {
			t.Fatalf("answer %d diverges: %+v vs %+v", i, goalAns[i], fullAns[i])
		}
	}
}

func TestQueryGoalValidation(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	ctx := context.Background()
	cases := []GoalQuery{
		{}, // empty goal
		{ // rule head shadows the stored relation O
			Goal: datalog.NewAtom("O", datalog.V("x"), datalog.V("y")),
			Rules: []datalog.Rule{{ID: "shadow", Head: datalog.NewHead("O", datalog.HV("x"), datalog.HV("y")),
				Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("P", datalog.V("x"), datalog.V("y")))}}},
		},
		{ // reserved name
			Goal: datalog.NewAtom("v@bf", datalog.V("x")),
		},
		{ // goal arity mismatch against the stored relation
			Goal: datalog.NewAtom("O", datalog.V("x")),
		},
		{ // body atom aliasing a rewrite-internal predicate
			Goal: datalog.NewAtom("v", datalog.V("x")),
			Rules: []datalog.Rule{{ID: "alias", Head: datalog.NewHead("v", datalog.HV("x")),
				Body: []datalog.Literal{
					datalog.Pos(datalog.NewAtom("O", datalog.V("x"), datalog.V("y"))),
					datalog.Pos(datalog.NewAtom("magic@f@goal")),
				}}},
		},
	}
	for i, gq := range cases {
		if _, err := alaska.QueryGoal(ctx, gq); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("case %d: err = %v, want ErrInvalidQuery", i, err)
		}
	}
}

// The query mirror must track commits: interleaved writes and queries see
// exactly the current instance, including provenance merges and deletes.
func TestQueryMirrorTracksWrites(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	ctx := context.Background()
	q := Query{
		Select: []string{"org"},
		Body:   []datalog.Literal{datalog.Pos(datalog.NewAtom("O", datalog.V("org"), datalog.V("oid")))},
	}
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	ans, err := alaska.Query(ctx, q)
	if err != nil || len(ans) != 1 {
		t.Fatalf("first query: %v %v", ans, err)
	}
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("rat", 2)))
	ans, err = alaska.Query(ctx, q)
	if err != nil || len(ans) != 2 {
		t.Fatalf("after insert: %v %v", ans, err)
	}
	commit(t, alaska.NewTransaction().Delete("O", workload.OTuple("mouse", 1)))
	ans, err = alaska.Query(ctx, q)
	if err != nil || len(ans) != 1 || !ans[0].Tuple[0].Equal(schema.String("rat")) {
		t.Fatalf("after delete: %v %v", ans, err)
	}
	// Key-replacing modify: the mirror must drop the replaced tuple.
	commit(t, alaska.NewTransaction().Modify("O", workload.OTuple("rat", 2), workload.OTuple("gerbil", 2)))
	ans, err = alaska.Query(ctx, q)
	if err != nil || len(ans) != 1 || !ans[0].Tuple[0].Equal(schema.String("gerbil")) {
		t.Fatalf("after modify: %v %v", ans, err)
	}
	// Out-of-band instance write (bypassing the peer API) must invalidate
	// the mirror via the version check, not serve stale answers.
	if err := alaska.Instance().Insert("O", workload.OTuple("heron", 9), provenance.One()); err != nil {
		t.Fatal(err)
	}
	ans, err = alaska.Query(ctx, q)
	if err != nil || len(ans) != 2 {
		t.Fatalf("after out-of-band insert: %v %v", ans, err)
	}
}

func TestQueryGoalNoProvenance(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	ans, err := alaska.QueryGoal(context.Background(), GoalQuery{
		Goal:         datalog.NewAtom("O", datalog.V("org"), datalog.V("oid")),
		NoProvenance: true,
	})
	if err != nil || len(ans) != 1 {
		t.Fatalf("answers = %v, err %v", ans, err)
	}
	if !ans[0].Prov.IsZero() {
		t.Errorf("NoProvenance answer carries %v", ans[0].Prov)
	}
}

func TestExplainTracesOrigins(t *testing.T) {
	peers, _ := fig2(t)
	alaska, dresden := peers[workload.Alaska], peers[workload.Dresden]
	aTxn := commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	reconcile(t, dresden)

	prov, supports, ok := dresden.Explain("OPS", workload.OPSTuple("mouse", "p53", "ACGT"))
	if !ok {
		t.Fatal("tuple not found")
	}
	if prov.IsZero() {
		t.Fatal("no provenance recorded")
	}
	if len(supports) == 0 {
		t.Fatal("no supports decoded")
	}
	foundTxn := false
	foundMapping := false
	for _, s := range supports {
		for _, id := range s.Txns {
			if id == aTxn.ID {
				foundTxn = true
			}
		}
		for _, m := range s.Mappings {
			if m == "M_AC" {
				foundMapping = true
			}
		}
	}
	if !foundTxn {
		t.Errorf("supports missing origin txn: %+v", supports)
	}
	if !foundMapping {
		t.Errorf("supports missing join mapping: %+v", supports)
	}

	// Missing tuple and unknown relation.
	if _, _, ok := dresden.Explain("OPS", workload.OPSTuple("no", "such", "row")); ok {
		t.Error("phantom explain")
	}
	if _, _, ok := dresden.Explain("NOPE", workload.OPSTuple("a", "b", "c")); ok {
		t.Error("unknown relation explain")
	}
}

func TestExplainLocalTuple(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	txn := commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	_, supports, ok := alaska.Explain("O", workload.OTuple("mouse", 1))
	if !ok {
		t.Fatal("local tuple not found")
	}
	// A locally inserted tuple is supported by its own transaction... but
	// local commits record provenance One (trusted axiomatically), so the
	// supports list may be a single empty derivation.
	_ = txn
	if len(supports) != 1 {
		t.Errorf("supports = %+v", supports)
	}
}

// Query answers respect reconciliation: rejected data never shows up.
func TestQuerySeesOnlyAcceptedData(t *testing.T) {
	peers, _ := fig2(t)
	beijing, dresden, crete := peers[workload.Beijing], peers[workload.Dresden], peers[workload.Crete]
	commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")))
	publish(t, beijing)
	commit(t, dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("mouse", "p53", "CCCC")))
	publish(t, dresden)
	reconcile(t, crete)

	ans, err := crete.Query(context.Background(), Query{
		Select: []string{"seq"},
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("OPS",
				datalog.C(schema.String("mouse")), datalog.C(schema.String("p53")), datalog.V("seq"))),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Tuple[0].Equal(schema.String("AAAA")) {
		t.Errorf("answers = %v", ans)
	}
}

func TestDecodeSupportsMixed(t *testing.T) {
	// Two alternative derivations: one via alaska:1's update 0 through
	// mapping M_AC, one via beijing:2's update 1 directly.
	p := provenance.NewVar("alaska:1/0").Mul(provenance.NewVar("M_AC")).
		Add(provenance.NewVar("beijing:2/1"))
	sup := DecodeSupports(p)
	if len(sup) != 2 {
		t.Fatalf("supports = %+v", sup)
	}
	// Canonical monomial order puts alaska's monomial second or first
	// depending on keys; find each.
	var viaMapping, direct *Support
	for i := range sup {
		if len(sup[i].Mappings) == 1 {
			viaMapping = &sup[i]
		} else {
			direct = &sup[i]
		}
	}
	if viaMapping == nil || direct == nil {
		t.Fatalf("supports = %+v", sup)
	}
	if len(viaMapping.Txns) != 1 || viaMapping.Txns[0] != (updates.TxnID{Peer: "alaska", Seq: 1}) ||
		viaMapping.Mappings[0] != "M_AC" {
		t.Errorf("viaMapping = %+v", viaMapping)
	}
	if len(direct.Txns) != 1 || direct.Txns[0] != (updates.TxnID{Peer: "beijing", Seq: 2}) {
		t.Errorf("direct = %+v", direct)
	}
}
