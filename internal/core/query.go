package core

import (
	"context"
	"fmt"
	"sort"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Query is a conjunctive query (with optional builtins and negation)
// against a peer's local instance. Body atoms use the peer's local
// relation names; Select lists the output variables.
//
//	q := core.Query{
//	    Select: []string{"org", "seq"},
//	    Body: []datalog.Literal{
//	        datalog.Pos(datalog.NewAtom("O", datalog.V("org"), datalog.V("oid"))),
//	        datalog.Pos(datalog.NewAtom("S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
//	    },
//	}
type Query struct {
	Select []string
	Body   []datalog.Literal
}

// Answer is one query result: the selected values plus the provenance
// polynomial combining the provenance of every tuple joined to produce it.
type Answer struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// Query evaluates a conjunctive query over the peer's current local
// instance. Answers carry provenance, so trust conditions and Explain work
// on query results exactly as on stored tuples. The context bounds the
// evaluation (queries are non-recursive, but large joins still take time).
func (p *Peer) Query(ctx context.Context, q Query) ([]Answer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("core: query selects no variables")
	}
	s := p.sys.Schema(p.name)
	// Load the local instance as the EDB.
	edb := datalog.NewDB()
	for _, rel := range s.Relations() {
		for _, row := range p.local.Table(rel.Name).Rows() {
			edb.Add(rel.Name, row.Tuple, row.Prov)
		}
	}
	head := make([]datalog.HeadTerm, len(q.Select))
	for i, v := range q.Select {
		head[i] = datalog.HV(v)
	}
	prog := &datalog.Program{Rules: []datalog.Rule{{
		ID:   "query",
		Head: datalog.Head{Pred: "_ans", Terms: head},
		Body: q.Body,
	}}}
	res, err := datalog.EvalCtx(ctx, prog, edb, datalog.Options{Provenance: true})
	if err != nil {
		return nil, err
	}
	var out []Answer
	for _, f := range res.Rel("_ans").Facts() {
		out = append(out, Answer{Tuple: f.Tuple, Prov: f.Prov})
	}
	return out, nil
}

// Support is one alternative derivation of a tuple: the publishing
// transactions whose data it joins and the mappings it passed through.
type Support struct {
	Txns     []updates.TxnID
	Mappings []string
}

// Explain returns the provenance of a tuple in the peer's local instance:
// the polynomial itself plus a per-derivation breakdown into supporting
// transactions and mappings. ok is false if the tuple is not present.
// Locally inserted tuples report the local transaction only.
func (p *Peer) Explain(rel string, tu schema.Tuple) (prov provenance.Poly, supports []Support, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tbl := p.local.Table(rel)
	if tbl == nil {
		return provenance.Poly{}, nil, false
	}
	row, found := tbl.Get(tu)
	if !found {
		return provenance.Poly{}, nil, false
	}
	return row.Prov, DecodeSupports(row.Prov), true
}

// DecodeSupports splits a provenance polynomial into per-monomial Support
// records: update tokens become transaction ids, all other variables are
// mapping tokens.
func DecodeSupports(p provenance.Poly) []Support {
	var out []Support
	for _, m := range p.Monomials() {
		var sup Support
		seenTxn := map[updates.TxnID]bool{}
		seenMap := map[string]bool{}
		for _, vp := range m.Vars {
			if id, isTok := updates.TokenTxn(vp.Var); isTok {
				if !seenTxn[id] {
					seenTxn[id] = true
					sup.Txns = append(sup.Txns, id)
				}
			} else if !seenMap[string(vp.Var)] {
				seenMap[string(vp.Var)] = true
				sup.Mappings = append(sup.Mappings, string(vp.Var))
			}
		}
		sort.Slice(sup.Txns, func(i, j int) bool { return sup.Txns[i].Less(sup.Txns[j]) })
		sort.Strings(sup.Mappings)
		out = append(out, sup)
	}
	return out
}
