package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/datalog/magic"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Query is a conjunctive query (with optional builtins and negation)
// against a peer's local instance. Body atoms use the peer's local
// relation names; Select lists the output variables.
//
//	q := core.Query{
//	    Select: []string{"org", "seq"},
//	    Body: []datalog.Literal{
//	        datalog.Pos(datalog.NewAtom("O", datalog.V("org"), datalog.V("oid"))),
//	        datalog.Pos(datalog.NewAtom("S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
//	    },
//	}
//
// Query is sugar over QueryGoal: the body becomes a view rule and the
// select list its goal, so the REPL's conjunctive queries run through the
// same goal-directed engine as the public SDK's.
type Query struct {
	Select []string
	Body   []datalog.Literal
}

// Answer is one query result: the selected values plus the provenance
// polynomial combining the provenance of every tuple joined to produce it.
type Answer struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// QueryMode selects the evaluation strategy for a goal query.
type QueryMode uint8

const (
	// GoalDirected evaluates through the magic-sets rewrite
	// (internal/datalog/magic): only facts reachable from the goal's
	// bindings drive the fixpoint. When the rewrite is unusable (adornment
	// can break stratification under negation) evaluation transparently
	// falls back to the full fixpoint — answers are identical either way.
	GoalDirected QueryMode = iota
	// FullFixpoint materializes every view rule over the whole instance and
	// filters. It is the reference strategy GoalDirected is equivalent to,
	// kept callable for verification and benchmarking.
	FullFixpoint
)

// GoalQuery is a goal-directed query: a goal atom whose constants are the
// bound arguments and whose variables are the free (output) ones, plus
// optional view rules defining derived predicates (recursion and stratified
// negation allowed) the goal may reference.
type GoalQuery struct {
	// Goal is the atom to solve. Its predicate names a stored relation or a
	// view rule head.
	Goal datalog.Atom
	// Rules are the query's view rules. Heads must not shadow stored
	// relations and must not use reserved names (containing '@').
	Rules []datalog.Rule
	// Mode selects the evaluation strategy; the zero value is GoalDirected.
	Mode QueryMode
	// SIP is the sideways-information-passing strategy for the magic
	// rewrite; the zero value is magic.LeftToRight.
	SIP magic.SIP
	// NoProvenance skips annotation bookkeeping: answers carry a zero
	// polynomial. Faster when the caller only wants tuples.
	NoProvenance bool
	// Stats, when non-nil, receives the evaluation's pipeline counters
	// (probe counts, pushdown hit rate, peak live intermediates — see
	// datalog.EvalStats). Counters accumulate across queries sharing the
	// struct.
	Stats *datalog.EvalStats
}

// queryPred is the reserved head predicate of the conjunctive Query form.
const queryPred = "_query"

// Query evaluates a conjunctive query over the peer's current local
// instance. Answers carry provenance, so trust conditions and Explain work
// on query results exactly as on stored tuples. The context bounds the
// evaluation.
func (p *Peer) Query(ctx context.Context, q Query) ([]Answer, error) {
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("%w: query selects no variables", ErrInvalidQuery)
	}
	head := make([]datalog.HeadTerm, len(q.Select))
	goalTerms := make([]datalog.Term, len(q.Select))
	for i, v := range q.Select {
		head[i] = datalog.HV(v)
		goalTerms[i] = datalog.V(v)
	}
	return p.QueryGoal(ctx, GoalQuery{
		Goal: datalog.NewAtom(queryPred, goalTerms...),
		Rules: []datalog.Rule{{
			ID:   "query",
			Head: datalog.Head{Pred: queryPred, Terms: head},
			Body: q.Body,
		}},
	})
}

// QueryGoal solves a goal query over the peer's current local instance.
//
// The instance is exposed to the evaluator as an O(#relations)
// copy-on-write snapshot of a maintained datalog mirror — queries never
// copy table rows, and the fixpoint only clones the extents it derives
// into. Under the default GoalDirected mode the program is magic-rewritten
// for the goal's binding pattern first, so selective queries touch only the
// data their bindings can reach.
//
// Answers list one tuple per binding of the goal's distinct free variables
// (first-occurrence order), in deterministic order, annotated with exactly
// the provenance the full fixpoint would compute. A goal with no free
// variables is a boolean query: one empty answer tuple when it holds, none
// when it does not.
func (p *Peer) QueryGoal(ctx context.Context, q GoalQuery) ([]Answer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sys.Schema(p.name)
	if err := validateGoalQuery(s, q); err != nil {
		return nil, err
	}
	sp := p.obsv.startSpan("core_query", p.name)
	defer p.obsv.endSpan(sp, p.name)
	p.obsv.queries.Inc()
	defer p.obsv.observeRounds(p.obsv.roundsNow())
	edb := p.queryEDB()
	opts := datalog.Options{
		Provenance:  !q.NoProvenance,
		Parallelism: p.engCfg.Parallelism,
		Stats:       q.Stats,
	}
	if opts.Stats == nil {
		// Fold un-redirected query evaluation into the peer's shared stats, so
		// System.Metrics() reflects query work without callers wiring a struct.
		opts.Stats = p.obsv.stats
	}
	var facts []datalog.Fact
	var err error
	if q.Mode == FullFixpoint {
		facts, err = magic.EvalGoalFull(ctx, q.Rules, q.Goal, edb, opts)
	} else {
		facts, _, err = magic.EvalGoal(ctx, q.Rules, q.Goal, edb, opts, magic.Options{SIP: q.SIP})
	}
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(facts))
	for i, f := range facts {
		out[i] = Answer{Tuple: f.Tuple, Prov: f.Prov}
		if q.NoProvenance {
			out[i].Prov = provenance.Poly{}
		}
	}
	return out, nil
}

// validateGoalQuery rejects malformed goal queries with ErrInvalidQuery
// detail before any evaluation work: missing goals, view heads that shadow
// stored relations or use reserved names, and goal/definition arity
// mismatches. Unknown body predicates are not errors — they evaluate over
// empty extents, like querying an empty relation.
func validateGoalQuery(s *schema.Schema, q GoalQuery) error {
	if q.Goal.Pred == "" {
		return fmt.Errorf("%w: empty goal", ErrInvalidQuery)
	}
	ruleArity := map[string]int{}
	for _, r := range q.Rules {
		h := r.Head.Pred
		switch {
		case h == "":
			return fmt.Errorf("%w: rule %q has an empty head predicate", ErrInvalidQuery, r.ID)
		case strings.Contains(h, "@"):
			return fmt.Errorf("%w: rule head %q uses a reserved name ('@' is reserved for the magic rewrite)", ErrInvalidQuery, h)
		case s.Relation(h) != nil:
			return fmt.Errorf("%w: rule head %q shadows a stored relation", ErrInvalidQuery, h)
		}
		if n, ok := ruleArity[h]; ok && n != len(r.Head.Terms) {
			return fmt.Errorf("%w: view %s defined with arities %d and %d", ErrInvalidQuery, h, n, len(r.Head.Terms))
		}
		ruleArity[h] = len(r.Head.Terms)
		// Body atoms must not alias rewrite-internal (adorned/magic)
		// predicates either: an '@' name that is inert as an empty EDB
		// extent under the full fixpoint could capture the rewrite's seed
		// or demand predicates and diverge under goal direction.
		for _, l := range r.Body {
			if l.Builtin == nil && strings.Contains(l.Atom.Pred, "@") {
				return fmt.Errorf("%w: rule %q references %q: '@' names are reserved for the magic rewrite",
					ErrInvalidQuery, r.ID, l.Atom.Pred)
			}
		}
	}
	if strings.Contains(q.Goal.Pred, "@") {
		return fmt.Errorf("%w: goal %q uses a reserved name", ErrInvalidQuery, q.Goal.Pred)
	}
	if rel := s.Relation(q.Goal.Pred); rel != nil {
		if len(q.Goal.Terms) != rel.Arity() {
			return fmt.Errorf("%w: goal %s has %d arguments; relation has arity %d",
				ErrInvalidQuery, q.Goal.Pred, len(q.Goal.Terms), rel.Arity())
		}
	} else if n, ok := ruleArity[q.Goal.Pred]; ok && n != len(q.Goal.Terms) {
		return fmt.Errorf("%w: goal %s has %d arguments; view has arity %d",
			ErrInvalidQuery, q.Goal.Pred, len(q.Goal.Terms), n)
	}
	return nil
}

// Support is one alternative derivation of a tuple: the publishing
// transactions whose data it joins and the mappings it passed through.
type Support struct {
	Txns     []updates.TxnID
	Mappings []string
}

// Explain returns the provenance of a tuple in the peer's local instance:
// the polynomial itself plus a per-derivation breakdown into supporting
// transactions and mappings. ok is false if the tuple is not present.
// Locally inserted tuples report the local transaction only.
func (p *Peer) Explain(rel string, tu schema.Tuple) (prov provenance.Poly, supports []Support, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tbl := p.local.Table(rel)
	if tbl == nil {
		return provenance.Poly{}, nil, false
	}
	row, found := tbl.Get(tu)
	if !found {
		return provenance.Poly{}, nil, false
	}
	return row.Prov, DecodeSupports(row.Prov), true
}

// DecodeSupports splits a provenance polynomial into per-monomial Support
// records: update tokens become transaction ids, all other variables are
// mapping tokens.
func DecodeSupports(p provenance.Poly) []Support {
	var out []Support
	for _, m := range p.Monomials() {
		var sup Support
		seenTxn := map[updates.TxnID]bool{}
		seenMap := map[string]bool{}
		for _, vp := range m.Vars {
			if id, isTok := updates.TokenTxn(vp.Var); isTok {
				if !seenTxn[id] {
					seenTxn[id] = true
					sup.Txns = append(sup.Txns, id)
				}
			} else if !seenMap[string(vp.Var)] {
				seenMap[string(vp.Var)] = true
				sup.Mappings = append(sup.Mappings, string(vp.Var))
			}
		}
		sort.Slice(sup.Txns, func(i, j int) bool { return sup.Txns[i].Less(sup.Txns[j]) })
		sort.Strings(sup.Mappings)
		out = append(out, sup)
	}
	return out
}
