// Package updates defines the CDSS's basic unit of information transfer:
// tuple-level updates grouped into transactions, together with the logical
// clock (epochs) and the transaction dependency graph. As Section 2 of the
// ORCHESTRA paper describes, the CDSS propagates, translates, and detects
// conflicts among *transactions*, not bare tuples, and data dependencies
// between transactions (one modifies a tuple inserted by another) induce a
// dependency graph that reconciliation must respect.
package updates

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Op is the kind of a tuple-level update.
type Op uint8

const (
	// OpInsert adds a new tuple.
	OpInsert Op = iota
	// OpDelete removes an existing tuple.
	OpDelete
	// OpModify replaces an existing tuple (same primary key) with a new one.
	OpModify
)

// String renders the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "+"
	case OpDelete:
		return "-"
	case OpModify:
		return "±"
	default:
		return "?"
	}
}

// Update is one tuple-level change against a relation. Old is set for
// deletes and modifies; New is set for inserts and modifies.
type Update struct {
	Rel string
	Op  Op
	Old schema.Tuple
	New schema.Tuple
	// Prov carries the provenance polynomial attached during update
	// translation; for freshly published local updates it is the update's
	// own token.
	Prov provenance.Poly
}

// Insert constructs an insertion update.
func Insert(rel string, t schema.Tuple) Update { return Update{Rel: rel, Op: OpInsert, New: t} }

// Delete constructs a deletion update.
func Delete(rel string, t schema.Tuple) Update { return Update{Rel: rel, Op: OpDelete, Old: t} }

// Modify constructs a modification update.
func Modify(rel string, old, new schema.Tuple) Update {
	return Update{Rel: rel, Op: OpModify, Old: old, New: new}
}

// Target returns the tuple the update writes (New for insert/modify, Old
// for delete).
func (u Update) Target() schema.Tuple {
	if u.Op == OpDelete {
		return u.Old
	}
	return u.New
}

// String renders the update.
func (u Update) String() string {
	switch u.Op {
	case OpInsert:
		return fmt.Sprintf("+%s%s", u.Rel, u.New)
	case OpDelete:
		return fmt.Sprintf("-%s%s", u.Rel, u.Old)
	default:
		return fmt.Sprintf("±%s%s→%s", u.Rel, u.Old, u.New)
	}
}

// TxnID identifies a transaction globally: the publishing peer plus a
// per-peer sequence number.
type TxnID struct {
	Peer string
	Seq  uint64
}

// String renders the id as peer:seq.
func (id TxnID) String() string { return fmt.Sprintf("%s:%d", id.Peer, id.Seq) }

// ParseTxnID parses peer:seq. The digits are parsed by hand: this sits on
// the token-parsing hot path (provenance attribution, kill sets, dependency
// extraction), where fmt.Sscanf cost dominated whole-profile collation.
func ParseTxnID(s string) (TxnID, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 || i == len(s)-1 {
		return TxnID{}, fmt.Errorf("updates: malformed txn id %q", s)
	}
	var seq uint64
	for j := i + 1; j < len(s); j++ {
		c := s[j]
		if c < '0' || c > '9' {
			return TxnID{}, fmt.Errorf("updates: malformed txn id %q", s)
		}
		seq = seq*10 + uint64(c-'0')
	}
	return TxnID{Peer: s[:i], Seq: seq}, nil
}

// Less orders transaction ids (peer, then seq) for determinism.
func (id TxnID) Less(o TxnID) bool {
	if id.Peer != o.Peer {
		return id.Peer < o.Peer
	}
	return id.Seq < o.Seq
}

// Transaction is an atomic group of updates published by one peer at one
// epoch, with explicit antecedent dependencies.
type Transaction struct {
	ID      TxnID
	Epoch   uint64
	Updates []Update
	// Deps lists antecedent transactions whose effects this transaction
	// reads or overwrites; it can only be applied if they are applied.
	Deps []TxnID
}

// Token mints the provenance token for the i-th update of the transaction.
// One token per published tuple-level update is the granularity at which
// ORCHESTRA traces provenance and assigns trust. Built by hand rather than
// fmt — token minting sits on the translation hot path.
func (t *Transaction) Token(i int) provenance.Var {
	b := make([]byte, 0, len(t.ID.Peer)+16)
	b = append(b, t.ID.Peer...)
	b = append(b, ':')
	b = strconv.AppendUint(b, t.ID.Seq, 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(i), 10)
	return provenance.Var(b)
}

// TokenTxn recovers the transaction id encoded in a provenance token, or
// false if the token is not an update token.
func TokenTxn(v provenance.Var) (TxnID, bool) {
	s := string(v)
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return TxnID{}, false
	}
	id, err := ParseTxnID(s[:slash])
	if err != nil {
		return TxnID{}, false
	}
	return id, true
}

// String renders the transaction.
func (t *Transaction) String() string {
	parts := make([]string, len(t.Updates))
	for i, u := range t.Updates {
		parts[i] = u.String()
	}
	return fmt.Sprintf("txn %s@%d {%s}", t.ID, t.Epoch, strings.Join(parts, "; "))
}

// WriteSet returns the (relation, key) pairs the transaction writes, using
// the relation's primary key columns as supplied by keyOf.
func (t *Transaction) WriteSet(keyOf func(rel string, tu schema.Tuple) schema.Tuple) []string {
	seen := map[string]bool{}
	var out []string
	add := func(rel string, tu schema.Tuple) {
		if tu == nil {
			return
		}
		k := rel + "/" + keyOf(rel, tu).Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, u := range t.Updates {
		add(u.Rel, u.Old)
		add(u.Rel, u.New)
	}
	sort.Strings(out)
	return out
}

// Conflicts reports whether two transactions write overlapping keys with
// incompatible values: both write the same (relation, key) and at least one
// of the writes differs. Following Taylor & Ives, two transactions that
// perform the identical write do not conflict.
func Conflicts(a, b *Transaction, keyOf func(string, schema.Tuple) schema.Tuple) bool {
	type write struct {
		del bool
		tup string
	}
	aw := map[string]write{}
	for _, u := range a.Updates {
		k := u.Rel + "/" + keyOf(u.Rel, u.Target()).Key()
		w := write{del: u.Op == OpDelete}
		if !w.del {
			w.tup = u.New.Key()
		}
		aw[k] = w
	}
	for _, u := range b.Updates {
		k := u.Rel + "/" + keyOf(u.Rel, u.Target()).Key()
		w, ok := aw[k]
		if !ok {
			continue
		}
		bd := u.Op == OpDelete
		if w.del != bd {
			return true
		}
		if !w.del && w.tup != u.New.Key() {
			return true
		}
	}
	return false
}
