package updates

import "sort"

// SavedWriter is one entry of a Tracker's last-writer index — the
// serializable form behind engine-state checkpoints (DESIGN.md §13).
type SavedWriter struct {
	Key    string
	Writer TxnID
}

// Save flattens the tracker's last-writer index in key order.
func (tr *Tracker) Save() []SavedWriter {
	out := make([]SavedWriter, 0, len(tr.lastWriter))
	for k, id := range tr.lastWriter {
		out = append(out, SavedWriter{Key: k, Writer: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the tracker's last-writer index with a saved snapshot.
// The keyOf projection is kept.
func (tr *Tracker) Restore(ws []SavedWriter) {
	tr.lastWriter = make(map[string]TxnID, len(ws))
	for _, w := range ws {
		tr.lastWriter[w.Key] = w.Writer
	}
}
