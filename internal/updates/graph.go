package updates

import (
	"fmt"
	"sort"

	"orchestra/internal/schema"
)

// Graph is a transaction dependency graph: edges run from a transaction to
// the antecedents it depends on. It supports the closures reconciliation
// needs: the antecedent set that must be co-applied with a candidate, and
// the dependent set that must be co-rejected with a rejected transaction.
type Graph struct {
	txns  map[TxnID]*Transaction
	deps  map[TxnID][]TxnID // txn -> antecedents
	rdeps map[TxnID][]TxnID // txn -> dependents
}

// NewGraph creates an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{
		txns:  map[TxnID]*Transaction{},
		deps:  map[TxnID][]TxnID{},
		rdeps: map[TxnID][]TxnID{},
	}
}

// Add inserts a transaction and its dependency edges. Dependencies on
// transactions not (yet) in the graph are recorded; HasAll reports whether
// they are resolvable.
func (g *Graph) Add(t *Transaction) error {
	if _, ok := g.txns[t.ID]; ok {
		return fmt.Errorf("updates: duplicate transaction %s", t.ID)
	}
	g.txns[t.ID] = t
	for _, d := range t.Deps {
		g.deps[t.ID] = append(g.deps[t.ID], d)
		g.rdeps[d] = append(g.rdeps[d], t.ID)
	}
	return nil
}

// Get returns a transaction by id.
func (g *Graph) Get(id TxnID) (*Transaction, bool) {
	t, ok := g.txns[id]
	return t, ok
}

// Len returns the number of transactions.
func (g *Graph) Len() int { return len(g.txns) }

// IDs returns all transaction ids in deterministic order.
func (g *Graph) IDs() []TxnID {
	out := make([]TxnID, 0, len(g.txns))
	for id := range g.txns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Antecedents returns the direct dependencies of id.
func (g *Graph) Antecedents(id TxnID) []TxnID { return g.deps[id] }

// Dependents returns the direct dependents of id.
func (g *Graph) Dependents(id TxnID) []TxnID { return g.rdeps[id] }

// AntecedentClosure returns every transaction transitively required by id,
// excluding id itself, in deterministic order. Missing antecedents (ids not
// in the graph) are included in the missing list.
func (g *Graph) AntecedentClosure(id TxnID) (closure []TxnID, missing []TxnID) {
	seen := map[TxnID]bool{id: true}
	stack := append([]TxnID(nil), g.deps[id]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if _, ok := g.txns[cur]; !ok {
			missing = append(missing, cur)
			continue
		}
		closure = append(closure, cur)
		stack = append(stack, g.deps[cur]...)
	}
	sort.Slice(closure, func(i, j int) bool { return closure[i].Less(closure[j]) })
	sort.Slice(missing, func(i, j int) bool { return missing[i].Less(missing[j]) })
	return closure, missing
}

// DependentClosure returns every transaction that transitively depends on
// id, excluding id itself — the set that must be rejected (or deferred)
// along with it.
func (g *Graph) DependentClosure(id TxnID) []TxnID {
	seen := map[TxnID]bool{id: true}
	var out []TxnID
	stack := append([]TxnID(nil), g.rdeps[id]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		stack = append(stack, g.rdeps[cur]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TopoOrder returns the transactions in an order where every antecedent
// precedes its dependents. Ties are broken by TxnID for determinism. It
// returns an error if the dependency relation is cyclic (which cannot occur
// for causally-generated transactions but can for corrupted input).
func (g *Graph) TopoOrder() ([]*Transaction, error) {
	indeg := map[TxnID]int{}
	for id := range g.txns {
		indeg[id] = 0
	}
	for id, ds := range g.deps {
		if _, ok := g.txns[id]; !ok {
			continue
		}
		for _, d := range ds {
			if _, ok := g.txns[d]; ok {
				indeg[id]++
			}
		}
	}
	var ready []TxnID
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Less(ready[j]) })
	var out []*Transaction
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		out = append(out, g.txns[cur])
		var next []TxnID
		for _, dep := range g.rdeps[cur] {
			if _, ok := g.txns[dep]; !ok {
				continue
			}
			indeg[dep]--
			if indeg[dep] == 0 {
				next = append(next, dep)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Less(next[j]) })
		ready = append(ready, next...)
	}
	if len(out) != len(g.txns) {
		return nil, fmt.Errorf("updates: dependency graph is cyclic")
	}
	return out, nil
}

// Tracker derives dependency edges for freshly created transactions: it
// remembers, per (relation, key), which transaction last wrote it, so a new
// transaction touching that key depends on the previous writer. This is how
// a peer computes the Deps list when publishing the diff of its local
// instance.
type Tracker struct {
	keyOf      func(rel string, tu schema.Tuple) schema.Tuple
	lastWriter map[string]TxnID
}

// NewTracker creates a tracker using keyOf to project tuples onto keys.
func NewTracker(keyOf func(string, schema.Tuple) schema.Tuple) *Tracker {
	return &Tracker{keyOf: keyOf, lastWriter: map[string]TxnID{}}
}

// Record computes the dependencies of t from previously recorded writers,
// sets t.Deps, and records t's own writes. Self-dependencies are skipped.
func (tr *Tracker) Record(t *Transaction) {
	depSet := map[TxnID]bool{}
	for _, u := range t.Updates {
		// Reads/overwrites: deletes and modifies depend on the writer of
		// the old tuple; inserts depend on a previous writer of the same
		// key if any (e.g. re-insert after delete).
		var probe schema.Tuple
		if u.Old != nil {
			probe = u.Old
		} else {
			probe = u.New
		}
		k := u.Rel + "/" + tr.keyOf(u.Rel, probe).Key()
		if w, ok := tr.lastWriter[k]; ok && w != t.ID {
			depSet[w] = true
		}
	}
	t.Deps = t.Deps[:0]
	for d := range depSet {
		t.Deps = append(t.Deps, d)
	}
	sort.Slice(t.Deps, func(i, j int) bool { return t.Deps[i].Less(t.Deps[j]) })
	for _, u := range t.Updates {
		k := u.Rel + "/" + tr.keyOf(u.Rel, u.Target()).Key()
		tr.lastWriter[k] = t.ID
	}
}

// RecordWrites registers t's writes as the latest for their keys without
// recomputing t.Deps — used for foreign transactions applied during
// reconciliation, whose dependencies were already fixed by their origin.
func (tr *Tracker) RecordWrites(t *Transaction) {
	for _, u := range t.Updates {
		k := u.Rel + "/" + tr.keyOf(u.Rel, u.Target()).Key()
		tr.lastWriter[k] = t.ID
	}
}
