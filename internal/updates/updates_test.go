package updates

import (
	"testing"

	"orchestra/internal/schema"
)

func tup(vs ...int64) schema.Tuple {
	out := make(schema.Tuple, len(vs))
	for i, v := range vs {
		out[i] = schema.Int(v)
	}
	return out
}

// keyFirst projects every tuple onto its first column (the "key").
func keyFirst(rel string, tu schema.Tuple) schema.Tuple { return tu.Project([]int{0}) }

func TestUpdateConstructors(t *testing.T) {
	ins := Insert("R", tup(1, 2))
	if ins.Op != OpInsert || !ins.Target().Equal(tup(1, 2)) || ins.Old != nil {
		t.Errorf("Insert = %v", ins)
	}
	del := Delete("R", tup(1, 2))
	if del.Op != OpDelete || !del.Target().Equal(tup(1, 2)) || del.New != nil {
		t.Errorf("Delete = %v", del)
	}
	mod := Modify("R", tup(1, 2), tup(1, 3))
	if mod.Op != OpModify || !mod.Target().Equal(tup(1, 3)) {
		t.Errorf("Modify = %v", mod)
	}
	for _, u := range []Update{ins, del, mod} {
		if u.String() == "" {
			t.Error("empty render")
		}
	}
	if OpInsert.String() != "+" || OpDelete.String() != "-" || OpModify.String() != "±" {
		t.Error("op rendering wrong")
	}
}

func TestTxnIDRoundTrip(t *testing.T) {
	ids := []TxnID{{Peer: "alaska", Seq: 0}, {Peer: "a:b", Seq: 42}, {Peer: "x", Seq: 1 << 60}}
	for _, id := range ids {
		got, err := ParseTxnID(id.String())
		if err != nil {
			t.Fatalf("ParseTxnID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("round trip %v -> %v", id, got)
		}
	}
	for _, bad := range []string{"", "nope", "x:y"} {
		if _, err := ParseTxnID(bad); err == nil {
			t.Errorf("ParseTxnID(%q) accepted", bad)
		}
	}
	if !(TxnID{Peer: "a", Seq: 2}).Less(TxnID{Peer: "b", Seq: 1}) {
		t.Error("peer order wrong")
	}
	if !(TxnID{Peer: "a", Seq: 1}).Less(TxnID{Peer: "a", Seq: 2}) {
		t.Error("seq order wrong")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	txn := &Transaction{ID: TxnID{Peer: "beijing", Seq: 7}}
	tok := txn.Token(3)
	id, ok := TokenTxn(tok)
	if !ok || id != txn.ID {
		t.Errorf("TokenTxn(%q) = %v, %v", tok, id, ok)
	}
	if _, ok := TokenTxn("M_ac"); ok {
		t.Error("mapping token misparsed as update token")
	}
}

func TestConflicts(t *testing.T) {
	mk := func(id uint64, us ...Update) *Transaction {
		return &Transaction{ID: TxnID{Peer: "p", Seq: id}, Updates: us}
	}
	// Same key, different values: conflict.
	a := mk(1, Insert("R", tup(1, 10)))
	b := mk(2, Insert("R", tup(1, 20)))
	if !Conflicts(a, b, keyFirst) {
		t.Error("divergent writes must conflict")
	}
	// Same key, identical write: no conflict.
	c := mk(3, Insert("R", tup(1, 10)))
	if Conflicts(a, c, keyFirst) {
		t.Error("identical writes must not conflict")
	}
	// Different keys: no conflict.
	d := mk(4, Insert("R", tup(2, 10)))
	if Conflicts(a, d, keyFirst) {
		t.Error("disjoint writes must not conflict")
	}
	// Insert vs delete of same key: conflict.
	e := mk(5, Delete("R", tup(1, 10)))
	if !Conflicts(a, e, keyFirst) {
		t.Error("insert vs delete must conflict")
	}
	// Modify vs modify to different values: conflict.
	f := mk(6, Modify("R", tup(1, 10), tup(1, 30)))
	g := mk(7, Modify("R", tup(1, 10), tup(1, 40)))
	if !Conflicts(f, g, keyFirst) {
		t.Error("divergent modifies must conflict")
	}
	// Same relation name matters.
	h := mk(8, Insert("Q", tup(1, 99)))
	if Conflicts(a, h, keyFirst) {
		t.Error("different relations must not conflict")
	}
}

func TestWriteSet(t *testing.T) {
	txn := &Transaction{ID: TxnID{Peer: "p", Seq: 1}, Updates: []Update{
		Insert("R", tup(1, 10)),
		Modify("R", tup(2, 20), tup(2, 25)),
		Insert("Q", tup(1, 1)),
	}}
	ws := txn.WriteSet(keyFirst)
	if len(ws) != 3 {
		t.Errorf("WriteSet = %v", ws)
	}
}

func TestGraphClosures(t *testing.T) {
	g := NewGraph()
	id := func(n uint64) TxnID { return TxnID{Peer: "p", Seq: n} }
	//   1 <- 2 <- 3
	//        ^
	//        4
	add := func(n uint64, deps ...uint64) {
		t1 := &Transaction{ID: id(n)}
		for _, d := range deps {
			t1.Deps = append(t1.Deps, id(d))
		}
		if err := g.Add(t1); err != nil {
			t.Fatal(err)
		}
	}
	add(1)
	add(2, 1)
	add(3, 2)
	add(4, 2)
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
	if err := g.Add(&Transaction{ID: id(1)}); err == nil {
		t.Error("duplicate add accepted")
	}
	cl, missing := g.AntecedentClosure(id(3))
	if len(cl) != 2 || cl[0] != id(1) || cl[1] != id(2) || len(missing) != 0 {
		t.Errorf("antecedents of 3 = %v missing %v", cl, missing)
	}
	dep := g.DependentClosure(id(1))
	if len(dep) != 3 {
		t.Errorf("dependents of 1 = %v", dep)
	}
	dep = g.DependentClosure(id(3))
	if len(dep) != 0 {
		t.Errorf("dependents of 3 = %v", dep)
	}
	// Missing antecedent surfaces in missing list.
	add(5, 99)
	_, missing = g.AntecedentClosure(id(5))
	if len(missing) != 1 || missing[0] != id(99) {
		t.Errorf("missing = %v", missing)
	}
}

func TestGraphTopoOrder(t *testing.T) {
	g := NewGraph()
	id := func(p string, n uint64) TxnID { return TxnID{Peer: p, Seq: n} }
	txns := []*Transaction{
		{ID: id("b", 1), Deps: []TxnID{id("a", 1)}},
		{ID: id("a", 1)},
		{ID: id("c", 1), Deps: []TxnID{id("b", 1), id("a", 1)}},
	}
	for _, txn := range txns {
		if err := g.Add(txn); err != nil {
			t.Fatal(err)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[TxnID]int{}
	for i, txn := range order {
		pos[txn.ID] = i
	}
	if !(pos[id("a", 1)] < pos[id("b", 1)] && pos[id("b", 1)] < pos[id("c", 1)]) {
		t.Errorf("order = %v", order)
	}
}

func TestGraphTopoOrderCycle(t *testing.T) {
	g := NewGraph()
	a := TxnID{Peer: "p", Seq: 1}
	b := TxnID{Peer: "p", Seq: 2}
	if err := g.Add(&Transaction{ID: a, Deps: []TxnID{b}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(&Transaction{ID: b, Deps: []TxnID{a}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestTrackerDependencies(t *testing.T) {
	tr := NewTracker(keyFirst)
	t1 := &Transaction{ID: TxnID{Peer: "alaska", Seq: 1}, Updates: []Update{Insert("R", tup(1, 10))}}
	tr.Record(t1)
	if len(t1.Deps) != 0 {
		t.Errorf("t1 deps = %v", t1.Deps)
	}
	// t2 modifies the tuple t1 inserted: depends on t1.
	t2 := &Transaction{ID: TxnID{Peer: "beijing", Seq: 1}, Updates: []Update{Modify("R", tup(1, 10), tup(1, 11))}}
	tr.Record(t2)
	if len(t2.Deps) != 1 || t2.Deps[0] != t1.ID {
		t.Errorf("t2 deps = %v", t2.Deps)
	}
	// t3 deletes it: depends on t2 (the last writer), not t1.
	t3 := &Transaction{ID: TxnID{Peer: "crete", Seq: 1}, Updates: []Update{Delete("R", tup(1, 11))}}
	tr.Record(t3)
	if len(t3.Deps) != 1 || t3.Deps[0] != t2.ID {
		t.Errorf("t3 deps = %v", t3.Deps)
	}
	// Unrelated key: no deps.
	t4 := &Transaction{ID: TxnID{Peer: "dresden", Seq: 1}, Updates: []Update{Insert("R", tup(9, 9))}}
	tr.Record(t4)
	if len(t4.Deps) != 0 {
		t.Errorf("t4 deps = %v", t4.Deps)
	}
	// Multi-update transaction picks up deps from each touched key, once.
	t5 := &Transaction{ID: TxnID{Peer: "e", Seq: 1}, Updates: []Update{
		Modify("R", tup(9, 9), tup(9, 10)),
		Insert("R", tup(1, 50)), // key 1's last writer is t3
	}}
	tr.Record(t5)
	if len(t5.Deps) != 2 {
		t.Errorf("t5 deps = %v", t5.Deps)
	}
}

func TestTransactionString(t *testing.T) {
	txn := &Transaction{ID: TxnID{Peer: "p", Seq: 1}, Epoch: 3,
		Updates: []Update{Insert("R", tup(1))}}
	if txn.String() == "" {
		t.Error("empty render")
	}
}
