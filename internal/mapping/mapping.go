// Package mapping implements ORCHESTRA's declarative schema mappings:
// tuple-generating dependencies (tgds) relating one peer's relations to
// another's. Mappings are compiled into the datalog rules that the update
// exchange engine evaluates; existential variables in mapping heads are
// Skolemized into labeled nulls, following the data-exchange semantics of
// Fagin et al. that ORCHESTRA builds on.
//
// Because different peers may use the same relation names (Figure 2's
// peers A and B share schema Σ1), predicates are qualified as
// "peer.Relation" throughout.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/schema"
)

// Qualify returns the qualified predicate name for a peer's relation.
func Qualify(peer, rel string) string { return peer + "." + rel }

// SplitQualified splits a qualified predicate name into peer and relation.
func SplitQualified(pred string) (peer, rel string, err error) {
	i := strings.IndexByte(pred, '.')
	if i < 0 {
		return "", "", fmt.Errorf("mapping: unqualified predicate %q", pred)
	}
	return pred[:i], pred[i+1:], nil
}

// Mapping is one tgd: body (over the source peer's relations) implies head
// (over the target peer's relations). Variables appearing only in the head
// are existential and are Skolemized at compile time. The body may include
// builtin comparison literals.
type Mapping struct {
	// ID names the mapping, e.g. "M_AC"; it is also the provenance token
	// recorded on every tuple the mapping derives.
	ID string
	// Source and Target are the peer names the body/head predicates belong
	// to (informational; predicates are explicitly qualified).
	Source, Target string
	// Body is a conjunction of positive atoms and builtins over qualified
	// source predicates.
	Body []datalog.Literal
	// Head is a conjunction of atoms over qualified target predicates.
	Head []datalog.Atom
}

// universalVars returns the variables bound by positive body atoms.
func (m *Mapping) universalVars() map[string]bool {
	vars := map[string]bool{}
	for _, l := range m.Body {
		if l.Builtin != nil || l.Negated {
			continue
		}
		for _, t := range l.Atom.Terms {
			if t.IsVar() {
				vars[t.Name] = true
			}
		}
	}
	return vars
}

// ExistentialVars returns the head variables not bound in the body, sorted.
func (m *Mapping) ExistentialVars() []string {
	uni := m.universalVars()
	seen := map[string]bool{}
	var out []string
	for _, a := range m.Head {
		for _, t := range a.Terms {
			if t.IsVar() && !uni[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the mapping is a well-formed tgd: non-empty body and
// head, no negated body atoms, and all builtin variables bound.
func (m *Mapping) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("mapping: missing ID")
	}
	if len(m.Body) == 0 || len(m.Head) == 0 {
		return fmt.Errorf("mapping %s: empty body or head", m.ID)
	}
	uni := m.universalVars()
	hasPositive := false
	for _, l := range m.Body {
		if l.Negated {
			return fmt.Errorf("mapping %s: negated body atoms are not allowed in tgds", m.ID)
		}
		if l.Builtin != nil {
			for _, t := range []datalog.Term{l.Builtin.Left, l.Builtin.Right} {
				if t.IsVar() && !uni[t.Name] {
					return fmt.Errorf("mapping %s: builtin uses unbound variable %s", m.ID, t.Name)
				}
			}
			continue
		}
		hasPositive = true
		if _, _, err := SplitQualified(l.Atom.Pred); err != nil {
			return err
		}
	}
	if !hasPositive {
		return fmt.Errorf("mapping %s: body has no positive atom", m.ID)
	}
	for _, a := range m.Head {
		if _, _, err := SplitQualified(a.Pred); err != nil {
			return err
		}
	}
	return nil
}

// skolemFrontier returns the sorted universal variables appearing in the
// head — the arguments of every Skolem function this mapping introduces.
func (m *Mapping) skolemFrontier() []string {
	uni := m.universalVars()
	seen := map[string]bool{}
	var out []string
	for _, a := range m.Head {
		for _, t := range a.Terms {
			if t.IsVar() && uni[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Rules compiles the mapping into one datalog rule per head atom. All head
// atoms share the same Skolem terms for the mapping's existential
// variables, so e.g. the split mapping MC→A of Figure 2 invents the *same*
// oid labeled null in O(org, oid) and S(oid, pid, seq).
func (m *Mapping) Rules() ([]datalog.Rule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	uni := m.universalVars()
	frontier := m.skolemFrontier()
	frontierTerms := make([]datalog.Term, len(frontier))
	for i, v := range frontier {
		frontierTerms[i] = datalog.V(v)
	}
	var rules []datalog.Rule
	for i, a := range m.Head {
		terms := make([]datalog.HeadTerm, len(a.Terms))
		for j, t := range a.Terms {
			switch {
			case !t.IsVar():
				terms[j] = datalog.HC(t.Value)
			case uni[t.Name]:
				terms[j] = datalog.HV(t.Name)
			default:
				terms[j] = datalog.HSkolem(fmt.Sprintf("sk_%s_%s", m.ID, t.Name), frontierTerms...)
			}
		}
		rules = append(rules, datalog.Rule{
			ID:        fmt.Sprintf("%s#%d", m.ID, i),
			ProvToken: m.ID,
			Head:      datalog.Head{Pred: a.Pred, Terms: terms},
			Body:      append([]datalog.Literal(nil), m.Body...),
		})
	}
	return rules, nil
}

// Compile compiles a set of mappings into a single datalog program.
func Compile(mappings []*Mapping) (*datalog.Program, error) {
	prog := &datalog.Program{}
	seen := map[string]bool{}
	for _, m := range mappings {
		if seen[m.ID] {
			return nil, fmt.Errorf("mapping: duplicate mapping ID %s", m.ID)
		}
		seen[m.ID] = true
		rules, err := m.Rules()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, rules...)
	}
	return prog, nil
}

// Identity builds the identity mapping between two peers that share a
// schema: one tgd per relation copying source to target.
func Identity(id, source, target string, s *schema.Schema) []*Mapping {
	var out []*Mapping
	for _, rel := range s.Relations() {
		terms := make([]datalog.Term, rel.Arity())
		for i := range terms {
			terms[i] = datalog.V(fmt.Sprintf("x%d", i))
		}
		out = append(out, &Mapping{
			ID:     fmt.Sprintf("%s_%s", id, rel.Name),
			Source: source,
			Target: target,
			Body:   []datalog.Literal{datalog.Pos(datalog.NewAtom(Qualify(source, rel.Name), terms...))},
			Head:   []datalog.Atom{datalog.NewAtom(Qualify(target, rel.Name), terms...)},
		})
	}
	return out
}
