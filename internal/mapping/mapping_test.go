package mapping

import (
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func str(s string) schema.Value { return schema.String(s) }

// joinMapping is Figure 2's MA→C: OPS(org,prot,seq) :- O(org,oid),
// P(prot,pid), S(oid,pid,seq).
func joinMapping() *Mapping {
	return &Mapping{
		ID: "M_AC", Source: "alaska", Target: "crete",
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("alaska.O", datalog.V("org"), datalog.V("oid"))),
			datalog.Pos(datalog.NewAtom("alaska.P", datalog.V("prot"), datalog.V("pid"))),
			datalog.Pos(datalog.NewAtom("alaska.S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
		},
		Head: []datalog.Atom{
			datalog.NewAtom("crete.OPS", datalog.V("org"), datalog.V("prot"), datalog.V("seq")),
		},
	}
}

// splitMapping is Figure 2's MC→A: O(org,oid), P(prot,pid), S(oid,pid,seq)
// :- OPS(org,prot,seq) with oid, pid existential.
func splitMapping() *Mapping {
	return &Mapping{
		ID: "M_CA", Source: "crete", Target: "alaska",
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("crete.OPS", datalog.V("org"), datalog.V("prot"), datalog.V("seq"))),
		},
		Head: []datalog.Atom{
			datalog.NewAtom("alaska.O", datalog.V("org"), datalog.V("oid")),
			datalog.NewAtom("alaska.P", datalog.V("prot"), datalog.V("pid")),
			datalog.NewAtom("alaska.S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq")),
		},
	}
}

func TestQualify(t *testing.T) {
	p, r, err := SplitQualified(Qualify("alaska", "O"))
	if err != nil || p != "alaska" || r != "O" {
		t.Errorf("split = %s %s %v", p, r, err)
	}
	if _, _, err := SplitQualified("nodot"); err == nil {
		t.Error("unqualified accepted")
	}
}

func TestExistentialVars(t *testing.T) {
	if vars := joinMapping().ExistentialVars(); len(vars) != 0 {
		t.Errorf("join existentials = %v", vars)
	}
	vars := splitMapping().ExistentialVars()
	if len(vars) != 2 || vars[0] != "oid" || vars[1] != "pid" {
		t.Errorf("split existentials = %v", vars)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    *Mapping
	}{
		{"no id", &Mapping{Body: joinMapping().Body, Head: joinMapping().Head}},
		{"empty body", &Mapping{ID: "m", Head: joinMapping().Head}},
		{"empty head", &Mapping{ID: "m", Body: joinMapping().Body}},
		{"negated body", &Mapping{ID: "m",
			Body: []datalog.Literal{datalog.Neg(datalog.NewAtom("a.R", datalog.V("x")))},
			Head: []datalog.Atom{datalog.NewAtom("b.R", datalog.V("x"))}}},
		{"unqualified body", &Mapping{ID: "m",
			Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("R", datalog.V("x")))},
			Head: []datalog.Atom{datalog.NewAtom("b.R", datalog.V("x"))}}},
		{"unqualified head", &Mapping{ID: "m",
			Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("a.R", datalog.V("x")))},
			Head: []datalog.Atom{datalog.NewAtom("R", datalog.V("x"))}}},
		{"builtin only body", &Mapping{ID: "m",
			Body: []datalog.Literal{datalog.Cmp(datalog.V("x"), datalog.OpLt, datalog.V("y"))},
			Head: []datalog.Atom{datalog.NewAtom("b.R", datalog.V("x"))}}},
		{"unbound builtin var", &Mapping{ID: "m",
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom("a.R", datalog.V("x"))),
				datalog.Cmp(datalog.V("w"), datalog.OpLt, datalog.V("x"))},
			Head: []datalog.Atom{datalog.NewAtom("b.R", datalog.V("x"))}}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := joinMapping().Validate(); err != nil {
		t.Errorf("join mapping rejected: %v", err)
	}
	if err := splitMapping().Validate(); err != nil {
		t.Errorf("split mapping rejected: %v", err)
	}
}

func TestJoinMappingEvaluation(t *testing.T) {
	prog, err := Compile([]*Mapping{joinMapping()})
	if err != nil {
		t.Fatal(err)
	}
	edb := datalog.NewDB()
	edb.Add("alaska.O", schema.NewTuple(str("mouse"), schema.Int(1)), provenance.NewVar("o1"))
	edb.Add("alaska.P", schema.NewTuple(str("p53"), schema.Int(10)), provenance.NewVar("p1"))
	edb.Add("alaska.S", schema.NewTuple(schema.Int(1), schema.Int(10), str("ACGT")), provenance.NewVar("s1"))
	// A dangling S tuple with no matching P: must not produce OPS.
	edb.Add("alaska.S", schema.NewTuple(schema.Int(1), schema.Int(99), str("TTTT")), provenance.NewVar("s2"))
	res, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Rel("crete.OPS")
	if ops.Len() != 1 {
		t.Fatalf("OPS = %v", ops.Facts())
	}
	f, _ := ops.Get(schema.NewTuple(str("mouse"), str("p53"), str("ACGT")))
	// Provenance: o1·p1·s1·M_AC.
	want := provenance.NewVar("o1").Mul(provenance.NewVar("p1")).
		Mul(provenance.NewVar("s1")).Mul(provenance.NewVar("M_AC"))
	if !f.Prov.Equal(want) {
		t.Errorf("prov = %v, want %v", f.Prov, want)
	}
}

func TestSplitMappingSharedSkolems(t *testing.T) {
	prog, err := Compile([]*Mapping{splitMapping()})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("split compiles to %d rules", len(prog.Rules))
	}
	edb := datalog.NewDB()
	edb.AddTuple("crete.OPS", schema.NewTuple(str("mouse"), str("p53"), str("ACGT")))
	edb.AddTuple("crete.OPS", schema.NewTuple(str("mouse"), str("brca1"), str("GGGG")))
	res, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	oRel, pRel, sRel := res.Rel("alaska.O"), res.Rel("alaska.P"), res.Rel("alaska.S")
	if oRel.Len() != 2 || pRel.Len() != 2 || sRel.Len() != 2 {
		t.Fatalf("O/P/S sizes = %d/%d/%d", oRel.Len(), pRel.Len(), sRel.Len())
	}
	// The oid invented in O(mouse, ⊥oid) must be the same labeled null used
	// in S(⊥oid, ⊥pid, ACGT).
	var mouseOid schema.Value
	for _, f := range oRel.Facts() {
		if f.Tuple[0].Equal(str("mouse")) {
			if !f.Tuple[1].IsLabeledNull() {
				t.Fatalf("oid is not a labeled null: %v", f.Tuple)
			}
			mouseOid = f.Tuple[1]
		}
	}
	found := false
	for _, f := range sRel.Facts() {
		if f.Tuple[2].Equal(str("ACGT")) {
			if !f.Tuple[0].Equal(mouseOid) {
				t.Errorf("S oid %v != O oid %v", f.Tuple[0], mouseOid)
			}
			found = true
		}
	}
	if !found {
		t.Error("no S tuple for ACGT")
	}
	// Same (org,prot,seq) frontier ⇒ same skolem; two OPS rows for "mouse"
	// with different prot produce DIFFERENT oids because the frontier
	// includes prot and seq. (This is standard per-tgd skolemization.)
	oids := map[string]bool{}
	for _, f := range oRel.Facts() {
		oids[f.Tuple[1].Key()] = true
	}
	if len(oids) != 2 {
		t.Errorf("expected 2 distinct invented oids, got %d", len(oids))
	}
}

func TestCompileDuplicateID(t *testing.T) {
	if _, err := Compile([]*Mapping{joinMapping(), joinMapping()}); err == nil {
		t.Error("duplicate mapping IDs accepted")
	}
}

func TestIdentityMappings(t *testing.T) {
	s := schema.NewSchema("Σ1")
	s.MustAddRelation(schema.MustRelation("O",
		[]schema.Attribute{{Name: "org", Type: schema.KindString}, {Name: "oid", Type: schema.KindInt}}, "oid"))
	s.MustAddRelation(schema.MustRelation("P",
		[]schema.Attribute{{Name: "prot", Type: schema.KindString}, {Name: "pid", Type: schema.KindInt}}, "pid"))
	ms := Identity("M_AB", "alaska", "beijing", s)
	if len(ms) != 2 {
		t.Fatalf("identity produced %d mappings", len(ms))
	}
	prog, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	edb := datalog.NewDB()
	edb.AddTuple("alaska.O", schema.NewTuple(str("mouse"), schema.Int(1)))
	res, err := datalog.Eval(prog, edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel("beijing.O").Contains(schema.NewTuple(str("mouse"), schema.Int(1))) {
		t.Error("identity mapping did not copy tuple")
	}
	for _, m := range ms {
		if !strings.HasPrefix(m.ID, "M_AB_") {
			t.Errorf("mapping id = %s", m.ID)
		}
	}
}

func TestMappingWithBuiltin(t *testing.T) {
	// Copy only sequences for oid < 100.
	m := &Mapping{
		ID: "M_f", Source: "a", Target: "b",
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("a.S", datalog.V("oid"), datalog.V("seq"))),
			datalog.Cmp(datalog.V("oid"), datalog.OpLt, datalog.C(schema.Int(100))),
		},
		Head: []datalog.Atom{datalog.NewAtom("b.S", datalog.V("oid"), datalog.V("seq"))},
	}
	prog, err := Compile([]*Mapping{m})
	if err != nil {
		t.Fatal(err)
	}
	edb := datalog.NewDB()
	edb.AddTuple("a.S", schema.NewTuple(schema.Int(5), str("AA")))
	edb.AddTuple("a.S", schema.NewTuple(schema.Int(500), str("BB")))
	res, err := datalog.Eval(prog, edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("b.S").Len() != 1 {
		t.Errorf("filtered copy = %v", res.Rel("b.S").Facts())
	}
}

func TestRoundTripJoinSplit(t *testing.T) {
	// Compose MA→C and MC→A: alaska data flows to crete and back; the
	// round trip reproduces the original tuples (plus skolem variants).
	prog, err := Compile([]*Mapping{joinMapping(), splitMapping()})
	if err != nil {
		t.Fatal(err)
	}
	edb := datalog.NewDB()
	edb.AddTuple("alaska.O", schema.NewTuple(str("mouse"), schema.Int(1)))
	edb.AddTuple("alaska.P", schema.NewTuple(str("p53"), schema.Int(10)))
	edb.AddTuple("alaska.S", schema.NewTuple(schema.Int(1), schema.Int(10), str("ACGT")))
	res, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	// crete gets the joined tuple.
	if !res.Rel("crete.OPS").Contains(schema.NewTuple(str("mouse"), str("p53"), str("ACGT"))) {
		t.Error("join direction failed")
	}
	// alaska keeps its original tuples and gains skolemized variants.
	if !res.Rel("alaska.O").Contains(schema.NewTuple(str("mouse"), schema.Int(1))) {
		t.Error("original lost")
	}
	if res.Rel("alaska.O").Len() != 2 {
		t.Errorf("alaska.O = %v", res.Rel("alaska.O").Facts())
	}
}
