package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: StartSpan opens a timed operation, Child opens a nested
// one, End stamps the duration. Every ended span lands in two places —
// a duration histogram named "<span name>_ns" (so p50/p95/p99 per
// operation come for free) and a fixed-size ring of recent SpanRecords the
// introspection endpoint exposes for "what has the system been doing"
// questions. Parent/child linkage is by span id, so a reconcile span's
// per-window drain children are attributable to their round.
//
// Spans are allocation-light (one small struct per span, no maps, no
// context plumbing) and, like everything in this package, nil-safe: a nil
// registry starts nil spans, whose Child and End are no-ops returning 0.

// spanRingSize bounds the recent-span ring. Power of two for cheap masking.
const spanRingSize = 256

// SpanRecord is one completed span as kept in the ring.
type SpanRecord struct {
	// ID is the span's unique id within the registry; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation name ("core_publish", "exchange_drain", ...).
	Name string `json:"name"`
	// Peer is the optional peer label the span was started with.
	Peer string `json:"peer,omitempty"`
	// Start is the wall-clock start time in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// DurationNs is the span's wall-clock duration in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
}

// spanRing is a mutex-guarded fixed ring of completed spans. Span
// completion is per-operation (publish, reconcile window, checkpoint), not
// per-tuple, so a short critical section is cheap; the payoff is that
// recent() returns spans in completion order without coordination games.
type spanRing struct {
	mu   sync.Mutex
	buf  [spanRingSize]SpanRecord
	next uint64 // total spans ever recorded; next slot is next % size
}

func (r *spanRing) record(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next%spanRingSize] = rec
	r.next++
	r.mu.Unlock()
}

// recent returns the ring's contents, oldest first.
func (r *spanRing) recent() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if n == 0 {
		return nil
	}
	count := uint64(spanRingSize)
	if n < count {
		count = n
	}
	out := make([]SpanRecord, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%spanRingSize])
	}
	return out
}

// spanIDs hands out registry-wide unique span ids. A single process-wide
// counter is fine: ids only need to be unique and non-zero.
var spanIDs atomic.Uint64

// Span is one in-flight timed operation. The nil Span is a valid no-op.
type Span struct {
	reg    *Registry
	hist   *Histogram
	name   string
	peer   string
	id     uint64
	parent uint64
	start  time.Time
}

// StartSpan opens a root span named name with an optional peer label (the
// first label argument is used, if given). Returns nil on a nil registry.
func (r *Registry) StartSpan(name string, peer ...string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{
		reg:   r,
		hist:  r.Histogram(name + "_ns"),
		name:  name,
		id:    spanIDs.Add(1),
		start: time.Now(),
	}
	if len(peer) > 0 {
		s.peer = peer[0]
	}
	return s
}

// Child opens a nested span; its record links back to s. Returns nil on a
// nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.StartSpan(name)
	c.parent = s.id
	c.peer = s.peer
	return c
}

// Name returns the span's operation name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End completes the span, records it, and returns its duration (0 on nil).
// End is idempotent in effect only by caller discipline — call it once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.hist.Observe(d.Nanoseconds())
	s.reg.spans.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Peer:       s.peer,
		Start:      s.start.UnixNano(),
		DurationNs: d.Nanoseconds(),
	})
	return d
}
