package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format rendering of a snapshot. Histograms render as
// summaries (quantile-labeled gauges plus _count and _sum) rather than
// native Prometheus histograms: the log2 buckets are an implementation
// detail, while p50/p95/p99 are the series operators actually watch.

// promName sanitizes a metric name into the Prometheus charset and applies
// the orchestra_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("orchestra_"))
	b.WriteString("orchestra_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text exposition format,
// deterministically ordered.
func WriteProm(w io.Writer, s *Snapshot) error {
	for _, name := range s.SortedCounterNames() {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	gnames := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", pn, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
