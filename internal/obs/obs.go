// Package obs is the system's zero-dependency observability core: named
// atomic counters and gauges, lock-cheap fixed-bucket histograms with
// percentile estimation, and lightweight span tracing with parent/child
// timing. Every layer of the system records into one Registry owned by the
// facade; cmd/orchestra serves its snapshot over HTTP and orchestra-bench
// prints per-experiment deltas.
//
// The package is designed so that DISABLED instrumentation costs almost
// nothing on hot paths: every method is safe on a nil receiver and returns
// immediately, so a layer opened without a registry pays one predictable
// nil check per operation — no allocation, no atomics, no time syscalls
// (callers gate their time.Now() reads on the handle being non-nil). An
// ENABLED registry costs one atomic add per counter event and two atomic
// adds plus a clock read per histogram observation; metric handles are
// resolved once at component construction, never per event.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i counts observations v
// with upperBound(i-1) < v <= upperBound(i), where upperBound(i) = 1<<i.
// 63 buckets cover every non-negative int64, so one histogram layout serves
// nanosecond latencies, byte volumes, and batch sizes alike.
const histBuckets = 63

// bucketFor returns the bucket index for a value: the smallest i with
// v <= 1<<i. Values <= 1 land in bucket 0; negatives are clamped.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// BucketBound returns bucket i's inclusive upper bound, 1<<i.
func BucketBound(i int) int64 { return int64(1) << uint(i) }

// Histogram is a lock-free fixed-bucket histogram over non-negative int64
// values (latencies in nanoseconds, sizes in bytes or items). Buckets are
// powers of two, so Observe is two atomic adds and a bit-length; quantiles
// are exact whenever the observed values are themselves bucket bounds
// (powers of two) and otherwise report the matching bucket's upper bound —
// at most a 2x overestimate, which is the usual log-bucket contract. The
// nil Histogram is a valid no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (no-op on nil; negatives clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers converge through
		// the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the first bucket whose cumulative count reaches q of the total. Returns
// 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// ceil(q * total) observations must be covered; clamp into [1, total].
	need := int64(q*float64(total) + 0.9999999)
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			return BucketBound(i)
		}
	}
	return h.max.Load()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Bound: BucketBound(i), Count: n})
		}
	}
	return s
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// Bound is the bucket's inclusive upper bound.
	Bound int64 `json:"bound"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50"`
	P95     int64         `json:"p95"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the snapshot's mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a named collection of metrics plus a ring of recent spans.
// Metric handles are created on first use and live for the registry's
// lifetime; lookups take a read lock, so components resolve their handles
// once at construction and record through the lock-free handles afterward.
// The nil Registry is a valid disabled registry: every method no-ops and
// every returned handle is nil (itself a no-op).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans spanRing
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed (nil on a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. A nil registry returns
// an empty (but non-nil) snapshot, so render paths need no special case.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	s.Spans = r.spans.recent()
	return s
}

// Snapshot is a point-in-time view of a registry, JSON-marshalable as-is.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Delta returns the change from prev to s: counters and histogram
// count/sum subtract, gauges and percentiles carry s's current values, and
// spans are s's. Metrics absent from prev report their full value. Both
// snapshots must come from the same registry for the result to mean
// anything.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      s.Spans,
	}
	for k, v := range s.Counters {
		if d := v - prev.Counters[k]; d != 0 {
			out.Counters[k] = d
		}
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		d := v
		d.Count -= p.Count
		d.Sum -= p.Sum
		d.Buckets = nil
		if d.Count > 0 {
			out.Histograms[k] = d
		}
	}
	return out
}

// SortedCounterNames returns the snapshot's counter names in order, for
// deterministic rendering.
func (s *Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
