package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramPercentilesExact feeds a histogram values that are exact
// bucket bounds (powers of two) and requires the percentiles to be exact:
// log-bucket quantiles report the bucket's upper bound, which IS the value
// when every observation sits on a bound.
func TestHistogramPercentilesExact(t *testing.T) {
	h := &Histogram{}
	// 100 observations: 50x 64, 45x 1024, 4x 4096, 1x 65536.
	for i := 0; i < 50; i++ {
		h.Observe(64)
	}
	for i := 0; i < 45; i++ {
		h.Observe(1024)
	}
	for i := 0; i < 4; i++ {
		h.Observe(4096)
	}
	h.Observe(65536)
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 64}, {0.51, 1024}, {0.95, 1024}, {0.96, 4096}, {0.99, 4096}, {1.0, 65536},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	s := h.snapshot()
	if s.Min != 64 || s.Max != 65536 {
		t.Errorf("min/max = %d/%d, want 64/65536", s.Min, s.Max)
	}
	wantSum := int64(50*64 + 45*1024 + 4*4096 + 65536)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.P50 != 64 || s.P95 != 1024 || s.P99 != 4096 {
		t.Errorf("p50/p95/p99 = %d/%d/%d, want 64/1024/4096", s.P50, s.P95, s.P99)
	}
}

// TestHistogramSingleValue: every percentile of a constant stream is that
// constant (when it is a bucket bound).
func TestHistogramSingleValue(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 7; i++ {
		h.Observe(256)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 256 {
			t.Errorf("Quantile(%v) = %d, want 256", q, got)
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5) // clamps to 0
	if got := h.Quantile(1); got != 1 {
		t.Errorf("clamped observation lands in bucket 0 (bound 1); got %d", got)
	}
	s := h.snapshot()
	if s.Min != 0 || s.Sum != 0 {
		t.Errorf("clamped min/sum = %d/%d, want 0/0", s.Min, s.Sum)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 40, 40}, {1<<40 + 1, 41}}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestNilSafety: a nil registry and every handle it returns must be inert.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(1)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil registry handles must read as zero")
	}
	sp := r.StartSpan("op")
	child := sp.Child("sub")
	if sp.End() != 0 || child.End() != 0 {
		t.Fatal("nil spans must end with zero duration")
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Fatal("nil registry snapshot must be empty and non-nil")
	}
}

// TestConcurrentRecording hammers one registry from many goroutines and
// requires the final snapshot to account for every event exactly. Run under
// -race this is also the data-race gate for the whole package.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	c := r.Counter("events_total")
	h := r.Histogram("latency_ns")
	g := r.Gauge("level")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(1) << uint(j%20))
				g.Set(int64(id))
				// Exercise the create-on-first-use path concurrently too.
				r.Counter("shared_total").Inc()
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["events_total"]; got != goroutines*perG {
		t.Errorf("events_total = %d, want %d", got, goroutines*perG)
	}
	if got := s.Counters["shared_total"]; got != goroutines*perG {
		t.Errorf("shared_total = %d, want %d", got, goroutines*perG)
	}
	hs := s.Histograms["latency_ns"]
	if hs.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	if hs.Min != 1 || hs.Max != 1<<19 {
		t.Errorf("histogram min/max = %d/%d, want 1/%d", hs.Min, hs.Max, 1<<19)
	}
	var bucketSum int64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, hs.Count)
	}
}

func TestSpanParentChild(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("core_reconcile", "alice")
	child := root.Child("exchange_drain")
	if child.End() < 0 {
		t.Fatal("child duration must be non-negative")
	}
	root.End()
	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(s.Spans))
	}
	// Ring is completion-ordered: child first.
	c, p := s.Spans[0], s.Spans[1]
	if c.Name != "exchange_drain" || p.Name != "core_reconcile" {
		t.Fatalf("span order: %q then %q", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Errorf("child.Parent = %d, want %d", c.Parent, p.ID)
	}
	if c.Peer != "alice" || p.Peer != "alice" {
		t.Errorf("peer label not inherited: %q / %q", c.Peer, p.Peer)
	}
	if s.Histograms["core_reconcile_ns"].Count != 1 || s.Histograms["exchange_drain_ns"].Count != 1 {
		t.Error("span durations must land in <name>_ns histograms")
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanRingSize+10; i++ {
		r.StartSpan("op").End()
	}
	if got := len(r.Snapshot().Spans); got != spanRingSize {
		t.Fatalf("ring holds %d spans, want %d", got, spanRingSize)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("lsm_flush_total").Add(3)
	r.Gauge("exchange_window_ewma_ns").Set(42)
	r.Histogram("lsm_wal_fsync_ns").Observe(1024)
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE orchestra_lsm_flush_total counter",
		"orchestra_lsm_flush_total 3",
		"# TYPE orchestra_exchange_window_ewma_ns gauge",
		"orchestra_exchange_window_ewma_ns 42",
		"# TYPE orchestra_lsm_wal_fsync_ns summary",
		`orchestra_lsm_wal_fsync_ns{quantile="0.5"} 1024`,
		"orchestra_lsm_wal_fsync_ns_count 1",
		"orchestra_lsm_wal_fsync_ns_sum 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{...} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed prom line %q", line)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Histogram("h").Observe(8)
	before := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("b").Add(2)
	r.Histogram("h").Observe(8)
	r.Histogram("h").Observe(16)
	d := r.Snapshot().Delta(before)
	if d.Counters["a"] != 5 || d.Counters["b"] != 2 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if h := d.Histograms["h"]; h.Count != 2 || h.Sum != 24 {
		t.Errorf("histogram delta count/sum = %d/%d, want 2/24", h.Count, h.Sum)
	}
	if _, ok := d.Histograms["unchanged"]; ok {
		t.Error("unchanged histograms must not appear in delta")
	}
}
