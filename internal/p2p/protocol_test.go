package p2p

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// rawRequest sends a raw line to the server and decodes one response.
func rawRequest(t *testing.T, addr, line string) response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if resp := rawRequest(t, srv.Addr(), "{not json"); resp.Error == "" {
		t.Error("malformed JSON accepted")
	}
	if resp := rawRequest(t, srv.Addr(), `{"op":"frobnicate"}`); resp.Error == "" {
		t.Error("unknown op accepted")
	}
	if resp := rawRequest(t, srv.Addr(), `{"op":"publish","txns":[{"peer":"a","seq":1,"updates":[{"rel":"R","op":9}]}]}`); resp.Error == "" {
		t.Error("bad wire txn accepted")
	}
	// The connection survives bad requests: a good request still works.
	if resp := rawRequest(t, srv.Addr(), `{"op":"epoch"}`); !resp.OK {
		t.Errorf("epoch after errors: %+v", resp)
	}
}

func TestServerMultipleRequestsPerConnection(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte(`{"op":"epoch"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		var resp response
		if err := json.NewDecoder(r).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
}

func TestServerCloseDropsConnections(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived server close")
	}
	// New dials fail.
	if _, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		t.Error("dial succeeded after close")
	}
}
