package p2p

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"orchestra/internal/updates"
)

// rawRequest sends a raw line to the server and decodes one response.
func rawRequest(t *testing.T, addr, line string) response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if resp := rawRequest(t, srv.Addr(), "{not json"); resp.Error == "" {
		t.Error("malformed JSON accepted")
	}
	if resp := rawRequest(t, srv.Addr(), `{"op":"frobnicate"}`); resp.Error == "" {
		t.Error("unknown op accepted")
	}
	if resp := rawRequest(t, srv.Addr(), `{"op":"publish","txns":[{"peer":"a","seq":1,"updates":[{"rel":"R","op":9}]}]}`); resp.Error == "" {
		t.Error("bad wire txn accepted")
	}
	// The connection survives bad requests: a good request still works.
	if resp := rawRequest(t, srv.Addr(), `{"op":"epoch"}`); !resp.OK {
		t.Errorf("epoch after errors: %+v", resp)
	}
}

func TestServerMultipleRequestsPerConnection(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte(`{"op":"epoch"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		var resp response
		if err := json.NewDecoder(r).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
}

func TestServerCloseDropsConnections(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived server close")
	}
	// New dials fail.
	if _, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		t.Error("dial succeeded after close")
	}
}

// TestClientPreservesAlreadyPublishedIdentity pins that the wire error code
// carries sentinel identity across the TCP protocol: errors.Is must hold on
// the client exactly as it does against an in-process store.
func TestClientPreservesAlreadyPublishedIdentity(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	if _, err := c.Publish([]*updates.Transaction{txn("a", 1, updates.Insert("R", tup("x")))}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Publish([]*updates.Transaction{txn("a", 1, updates.Insert("R", tup("x")))})
	if err == nil {
		t.Fatal("duplicate publish accepted")
	}
	if !errors.Is(err, ErrAlreadyPublished) {
		t.Fatalf("duplicate publish error lost identity across the wire: %v", err)
	}
	if !strings.Contains(err.Error(), "a:1") {
		t.Errorf("error dropped the server detail: %v", err)
	}
	// A fresh transaction still publishes: the error path is per-request.
	if _, err := c.Publish([]*updates.Transaction{txn("a", 2, updates.Insert("R", tup("y")))}); err != nil {
		t.Fatal(err)
	}
}

// TestClientConfigurableTimeout pins NewClientWith: a short timeout fails a
// dial to a blackholed address quickly instead of waiting out the default.
func TestClientConfigurableTimeout(t *testing.T) {
	if NewClientWith("x", 0).timeout != DefaultClientTimeout {
		t.Fatal("zero timeout did not select the default")
	}
	if got := NewClientWith("x", 250*time.Millisecond).timeout; got != 250*time.Millisecond {
		t.Fatalf("timeout = %v", got)
	}
	// A listener that never answers: accept the connection and go silent, so
	// the request blocks in the read until the I/O deadline fires.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c := NewClientWith(ln.Addr().String(), 200*time.Millisecond)
	start := time.Now()
	if _, err := c.Epoch(); err == nil {
		t.Fatal("request against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("short timeout not honored: request took %v", elapsed)
	}
}

// TestClientHonorsContextCancellation pins WithContext: cancelling mid-read
// unblocks the request immediately and surfaces the context error.
func TestClientHonorsContextCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, never respond
		}
	}()

	// Already-cancelled context: fails before dialing.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewClient(ln.Addr().String()).WithContext(cancelled).Epoch(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled request error = %v", err)
	}

	// Cancellation while blocked in the read: the watcher yanks the deadline
	// well before the 30s timeout would.
	ctx, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := NewClientWith(ln.Addr().String(), 30*time.Second).WithContext(ctx).Epoch()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the request")
	}
}
