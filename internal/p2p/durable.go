package p2p

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"orchestra/internal/lsm"
	"orchestra/internal/obs"
	"orchestra/internal/updates"
)

// DurableStore is the published-transaction archive on the LSM tier. Where
// FileStore replays its whole log into memory at open and serves reads from
// there, DurableStore keeps the archive disk-resident: Publish commits one
// lsm.Batch (one WAL record, one fsync — the group-commit window a
// PublishAll hands us), and Since streams transactions out of a snapshot
// range scan. Only the epoch counter and a record count live in memory, so
// the archive is no longer capped by RAM.
//
// The store may share its lsm.DB with other keyspaces (peer checkpoints use
// the same database under a different prefix); all its keys live under
// "a/". The caller owns the DB's lifecycle.
type DurableStore struct {
	mu    sync.Mutex
	db    *lsm.DB
	epoch uint64
	count int
	// Metric handles (nil when no registry is installed; see SetMetrics).
	pubBatches *obs.Counter   // p2p_publish_batches_total
	pubTxns    *obs.Counter   // p2p_published_txns_total
	pubBytes   *obs.Counter   // p2p_published_bytes_total
	batchTxns  *obs.Histogram // p2p_publish_batch_txns
	sinceScans *obs.Counter   // p2p_since_scans_total
	sinceTxns  *obs.Counter   // p2p_since_txns_total
}

// SetMetrics installs (or, with nil, removes) the archive's metric handles.
// Call before concurrent use begins.
func (s *DurableStore) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r == nil {
		s.pubBatches, s.pubTxns, s.pubBytes, s.batchTxns = nil, nil, nil, nil
		s.sinceScans, s.sinceTxns = nil, nil
		return
	}
	s.pubBatches = r.Counter("p2p_publish_batches_total")
	s.pubTxns = r.Counter("p2p_published_txns_total")
	s.pubBytes = r.Counter("p2p_published_bytes_total")
	s.batchTxns = r.Histogram("p2p_publish_batch_txns")
	s.sinceScans = r.Counter("p2p_since_scans_total")
	s.sinceTxns = r.Counter("p2p_since_txns_total")
}

// Key layout under the archive prefix:
//
//	a/t/<epoch be64><index be32> -> JSON WireTxn   (publish order == key order)
//	a/s/<peer esc><seq be64>     -> ""             (TxnID seen marker)
var (
	durTxnPrefix  = []byte("a/t/")
	durSeenPrefix = []byte("a/s/")
)

func durTxnKey(epoch uint64, idx int) []byte {
	k := make([]byte, 0, len(durTxnPrefix)+12)
	k = append(k, durTxnPrefix...)
	k = binary.BigEndian.AppendUint64(k, epoch)
	k = binary.BigEndian.AppendUint32(k, uint32(idx))
	return k
}

func durSeenKey(id updates.TxnID) []byte {
	k := append([]byte(nil), durSeenPrefix...)
	k = lsm.AppendString(k, id.Peer)
	k = binary.BigEndian.AppendUint64(k, id.Seq)
	return k
}

// prefixEnd returns the tightest key upper-bounding every key with the
// given prefix (nil means "to the end of the keyspace").
func prefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// NewDurableStore opens the archive keyspace inside db, recovering the
// epoch counter from the highest archived key. The scan touches keys only
// (values stream lazily per block), so open cost is bounded by index size,
// not archive size.
func NewDurableStore(db *lsm.DB) (*DurableStore, error) {
	s := &DurableStore{db: db}
	sn := db.Snapshot()
	defer sn.Close()
	err := sn.Scan(durTxnPrefix, prefixEnd(durTxnPrefix), func(k, v []byte) bool {
		if len(k) >= len(durTxnPrefix)+8 {
			if e := binary.BigEndian.Uint64(k[len(durTxnPrefix):]); e > s.epoch {
				s.epoch = e
			}
		}
		s.count++
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("p2p: recover durable store: %w", err)
	}
	return s, nil
}

// Publish implements Store. The whole batch — however many transactions a
// PublishAll window accumulated — becomes one atomic, fsynced lsm.Batch:
// either every transaction and its seen marker is durable, or none are.
func (s *DurableStore) Publish(txns []*updates.Transaction) (uint64, error) {
	if len(txns) == 0 {
		return s.Epoch()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dup := map[updates.TxnID]bool{}
	for _, t := range txns {
		if dup[t.ID] {
			return 0, fmt.Errorf("%w: %s", ErrAlreadyPublished, t.ID)
		}
		dup[t.ID] = true
		if _, ok, err := s.db.Get(durSeenKey(t.ID)); err != nil {
			return 0, err
		} else if ok {
			return 0, fmt.Errorf("%w: %s", ErrAlreadyPublished, t.ID)
		}
	}
	epoch := s.epoch + 1
	b := lsm.NewBatch()
	var bytes int64
	for i, t := range txns {
		t.Epoch = epoch
		data, err := json.Marshal(EncodeTxn(t))
		if err != nil {
			return 0, err
		}
		bytes += int64(len(data))
		b.Put(durTxnKey(epoch, i), data)
		b.Put(durSeenKey(t.ID), nil)
	}
	if err := s.db.Apply(b, true); err != nil {
		return 0, err
	}
	s.epoch = epoch
	s.count += len(txns)
	s.pubBatches.Inc()
	s.pubTxns.Add(int64(len(txns)))
	s.pubBytes.Add(bytes)
	s.batchTxns.Observe(int64(len(txns)))
	return epoch, nil
}

// Since implements Store, streaming matching transactions from a snapshot
// range scan starting just past the requested epoch. Keys sort by
// (epoch, batch index), so scan order is exactly publish order.
func (s *DurableStore) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	s.mu.Lock()
	sn := s.db.Snapshot()
	epoch := s.epoch
	s.mu.Unlock()
	defer sn.Close()
	lo := make([]byte, 0, len(durTxnPrefix)+8)
	lo = append(lo, durTxnPrefix...)
	lo = binary.BigEndian.AppendUint64(lo, since+1)
	var out []*updates.Transaction
	var derr error
	err := sn.Scan(lo, prefixEnd(durTxnPrefix), func(k, v []byte) bool {
		var w WireTxn
		if e := json.Unmarshal(v, &w); e != nil {
			derr = fmt.Errorf("p2p: corrupt archived transaction: %w", e)
			return false
		}
		t, e := DecodeTxn(w)
		if e != nil {
			derr = fmt.Errorf("p2p: corrupt archived transaction: %w", e)
			return false
		}
		out = append(out, t)
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		return nil, 0, err
	}
	s.sinceScans.Inc()
	s.sinceTxns.Add(int64(len(out)))
	return out, epoch, nil
}

// Epoch implements Store.
func (s *DurableStore) Epoch() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, nil
}

// Len returns the number of archived transactions.
func (s *DurableStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

var _ Store = (*DurableStore)(nil)
