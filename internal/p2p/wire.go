package p2p

import (
	"errors"
	"fmt"

	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// ErrBadWire reports a malformed wire transaction: an unknown update op or
// an undecodable tuple/transaction-id encoding. Every DecodeTxn failure
// wraps it (and the underlying parse error, when there is one), so callers
// dispatch with errors.Is/errors.As like the rest of the error taxonomy.
var ErrBadWire = errors.New("p2p: malformed wire transaction")

// Wire representations: transactions travel as JSON with tuples encoded by
// their canonical injective keys (schema.Tuple.Key), which round-trip
// exactly. Provenance does not travel — published transactions carry
// original updates whose provenance (their own tokens) is re-minted
// deterministically by the receiving side's exchange engine.

// WireUpdate is the wire form of updates.Update.
type WireUpdate struct {
	Rel string `json:"rel"`
	Op  uint8  `json:"op"`
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
}

// WireTxn is the wire form of updates.Transaction.
type WireTxn struct {
	Peer    string       `json:"peer"`
	Seq     uint64       `json:"seq"`
	Epoch   uint64       `json:"epoch"`
	Updates []WireUpdate `json:"updates"`
	Deps    []string     `json:"deps,omitempty"`
}

// EncodeTxn converts a transaction to wire form.
func EncodeTxn(t *updates.Transaction) WireTxn {
	w := WireTxn{Peer: t.ID.Peer, Seq: t.ID.Seq, Epoch: t.Epoch}
	for _, u := range t.Updates {
		wu := WireUpdate{Rel: u.Rel, Op: uint8(u.Op)}
		if u.Old != nil {
			wu.Old = u.Old.Key()
		}
		if u.New != nil {
			wu.New = u.New.Key()
		}
		w.Updates = append(w.Updates, wu)
	}
	for _, d := range t.Deps {
		w.Deps = append(w.Deps, d.String())
	}
	return w
}

// DecodeTxn converts wire form back to a transaction.
func DecodeTxn(w WireTxn) (*updates.Transaction, error) {
	t := &updates.Transaction{
		ID:    updates.TxnID{Peer: w.Peer, Seq: w.Seq},
		Epoch: w.Epoch,
	}
	for _, wu := range w.Updates {
		u := updates.Update{Rel: wu.Rel, Op: updates.Op(wu.Op)}
		if wu.Op > uint8(updates.OpModify) {
			return nil, fmt.Errorf("%w: unknown op %d", ErrBadWire, wu.Op)
		}
		if wu.Old != "" {
			tu, err := schema.ParseTupleKey(wu.Old)
			if err != nil {
				return nil, fmt.Errorf("%w: bad old tuple: %w", ErrBadWire, err)
			}
			u.Old = tu
		}
		if wu.New != "" {
			tu, err := schema.ParseTupleKey(wu.New)
			if err != nil {
				return nil, fmt.Errorf("%w: bad new tuple: %w", ErrBadWire, err)
			}
			u.New = tu
		}
		t.Updates = append(t.Updates, u)
	}
	for _, d := range w.Deps {
		id, err := updates.ParseTxnID(d)
		if err != nil {
			return nil, fmt.Errorf("%w: bad dep: %w", ErrBadWire, err)
		}
		t.Deps = append(t.Deps, id)
	}
	return t, nil
}

// request and response are the TCP protocol frames (JSON, one per line).
type request struct {
	Op    string    `json:"op"` // "publish", "since", "epoch"
	Epoch uint64    `json:"epoch,omitempty"`
	Txns  []WireTxn `json:"txns,omitempty"`
}

type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code carries the sentinel identity of well-known errors across the
	// wire (errCodeFor/sentinelForCode), so clients rebuild an error that
	// still matches errors.Is even though Error itself is just a string.
	Code  string    `json:"code,omitempty"`
	Epoch uint64    `json:"epoch,omitempty"`
	Txns  []WireTxn `json:"txns,omitempty"`
}

// Wire error codes. Every sentinel that must survive the TCP protocol gets
// a stable code; unknown codes degrade to a plain string error.
const codeAlreadyPublished = "already_published"

// errCodeFor maps an error to its wire code ("" when it has none).
func errCodeFor(err error) string {
	if errors.Is(err, ErrAlreadyPublished) {
		return codeAlreadyPublished
	}
	return ""
}

// sentinelForCode maps a wire code back to the sentinel it stands for.
func sentinelForCode(code string) error {
	if code == codeAlreadyPublished {
		return ErrAlreadyPublished
	}
	return nil
}

// wireError is a server-reported error rebuilt on the client with its
// sentinel identity: Error() keeps the server's exact message, Unwrap makes
// errors.Is(err, sentinel) hold across the protocol boundary.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }
