package p2p

import (
	"errors"
	"strings"
	"testing"

	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

func tup(vs ...string) schema.Tuple {
	out := make(schema.Tuple, len(vs))
	for i, v := range vs {
		out[i] = schema.String(v)
	}
	return out
}

func txn(peer string, seq uint64, us ...updates.Update) *updates.Transaction {
	return &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: seq}, Updates: us}
}

func TestMemoryStorePublishSince(t *testing.T) {
	s := NewMemoryStore()
	e0, err := s.Epoch()
	if err != nil || e0 != 0 {
		t.Fatalf("initial epoch = %d, %v", e0, err)
	}
	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	t2 := txn("a", 2, updates.Insert("R", tup("y")))
	e1, err := s.Publish([]*updates.Transaction{t1})
	if err != nil || e1 != 1 {
		t.Fatalf("publish 1: epoch=%d err=%v", e1, err)
	}
	e2, err := s.Publish([]*updates.Transaction{t2})
	if err != nil || e2 != 2 {
		t.Fatalf("publish 2: epoch=%d err=%v", e2, err)
	}
	if t1.Epoch != 1 || t2.Epoch != 2 {
		t.Errorf("epochs not stamped: %d %d", t1.Epoch, t2.Epoch)
	}
	all, cur, err := s.Since(0)
	if err != nil || len(all) != 2 || cur != 2 {
		t.Fatalf("Since(0) = %v, %d, %v", all, cur, err)
	}
	tail, _, err := s.Since(1)
	if err != nil || len(tail) != 1 || tail[0].ID != t2.ID {
		t.Fatalf("Since(1) = %v, %v", tail, err)
	}
	none, _, err := s.Since(2)
	if err != nil || len(none) != 0 {
		t.Fatalf("Since(2) = %v", none)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestMemoryStoreDuplicate(t *testing.T) {
	s := NewMemoryStore()
	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	if _, err := s.Publish([]*updates.Transaction{t1}); err != nil {
		t.Fatal(err)
	}
	dup := txn("a", 1, updates.Insert("R", tup("z")))
	if _, err := s.Publish([]*updates.Transaction{dup}); err == nil {
		t.Error("duplicate publish accepted")
	}
	// Empty publish does not advance the epoch.
	e, err := s.Publish(nil)
	if err != nil || e != 1 {
		t.Errorf("empty publish: epoch=%d err=%v", e, err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	orig := &updates.Transaction{
		ID:    updates.TxnID{Peer: "beijing", Seq: 7},
		Epoch: 3,
		Updates: []updates.Update{
			updates.Insert("S", schema.NewTuple(schema.Int(1), schema.Int(2), schema.String("AC|GT"))),
			updates.Delete("O", schema.NewTuple(schema.String("mouse"), schema.Int(1))),
			updates.Modify("P", schema.NewTuple(schema.String("p53"), schema.Int(9)),
				schema.NewTuple(schema.String("p53"), schema.Int(10))),
		},
		Deps: []updates.TxnID{{Peer: "alaska", Seq: 1}, {Peer: "crete", Seq: 2}},
	}
	got, err := DecodeTxn(EncodeTxn(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != orig.ID || got.Epoch != orig.Epoch || len(got.Updates) != 3 || len(got.Deps) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range orig.Updates {
		if got.Updates[i].Op != orig.Updates[i].Op {
			t.Errorf("update %d op mismatch", i)
		}
		if orig.Updates[i].Old != nil && !got.Updates[i].Old.Equal(orig.Updates[i].Old) {
			t.Errorf("update %d old mismatch", i)
		}
		if orig.Updates[i].New != nil && !got.Updates[i].New.Equal(orig.Updates[i].New) {
			t.Errorf("update %d new mismatch", i)
		}
	}
	if got.Deps[0] != orig.Deps[0] || got.Deps[1] != orig.Deps[1] {
		t.Error("deps mismatch")
	}
	// Labeled nulls survive the wire too.
	withNull := txn("crete", 1, updates.Insert("O",
		schema.NewTuple(schema.String("fly"), schema.LabeledNull("sk_M_CA_oid(s:fly)"))))
	got2, err := DecodeTxn(EncodeTxn(withNull))
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Updates[0].New[1].IsLabeledNull() {
		t.Error("labeled null lost on the wire")
	}
	// Malformed wire data is rejected, with every failure wrapping the
	// ErrBadWire sentinel so errors.Is dispatches through decode failures.
	for name, w := range map[string]WireTxn{
		"bad op":        {Peer: "x", Updates: []WireUpdate{{Rel: "R", Op: 9}}},
		"bad new tuple": {Peer: "x", Updates: []WireUpdate{{Rel: "R", Op: 0, New: "zz"}}},
		"bad old tuple": {Peer: "x", Updates: []WireUpdate{{Rel: "R", Op: 1, Old: "zz"}}},
		"bad dep":       {Peer: "x", Deps: []string{"nocolon"}},
	} {
		if _, err := DecodeTxn(w); !errors.Is(err, ErrBadWire) {
			t.Errorf("%s: err = %v, want ErrBadWire", name, err)
		}
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())

	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	epoch, err := c.Publish([]*updates.Transaction{t1})
	if err != nil || epoch != 1 {
		t.Fatalf("publish: %d %v", epoch, err)
	}
	if t1.Epoch != 1 {
		t.Errorf("client did not stamp epoch: %d", t1.Epoch)
	}
	got, cur, err := c.Since(0)
	if err != nil || len(got) != 1 || cur != 1 {
		t.Fatalf("since: %v %d %v", got, cur, err)
	}
	if got[0].ID != t1.ID || !got[0].Updates[0].New.Equal(tup("x")) {
		t.Errorf("got %+v", got[0])
	}
	e, err := c.Epoch()
	if err != nil || e != 1 {
		t.Errorf("epoch: %d %v", e, err)
	}
	// Duplicate publish over the wire errors.
	if _, err := c.Publish([]*updates.Transaction{t1}); err == nil ||
		!strings.Contains(err.Error(), "already published") {
		t.Errorf("duplicate: %v", err)
	}
}

func TestClientUnreachable(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens there
	if _, err := c.Epoch(); err == nil {
		t.Error("unreachable server produced no error")
	}
}

// TestOfflinePublisherScenario is demo scenario 5 at the transport level:
// Beijing publishes to the replicated store and goes offline; Alaska can
// still retrieve Beijing's transactions from a surviving replica.
func TestOfflinePublisherScenario(t *testing.T) {
	srv1, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	beijing := NewReplicatedStore(NewClient(srv1.Addr()), NewClient(srv2.Addr()))
	tb := txn("beijing", 1, updates.Insert("S", tup("seq1")))
	if _, err := beijing.Publish([]*updates.Transaction{tb}); err != nil {
		t.Fatal(err)
	}
	// Replica 1 dies; "Beijing goes offline" too (its client is gone).
	srv1.Close()

	alaska := NewReplicatedStore(NewClient(srv1.Addr()), NewClient(srv2.Addr()))
	got, epoch, err := alaska.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != tb.ID || epoch != 1 {
		t.Errorf("retrieved %v at epoch %d", got, epoch)
	}
}

func TestReplicatedStoreAllDown(t *testing.T) {
	r := NewReplicatedStore(NewClient("127.0.0.1:1"))
	if _, err := r.Epoch(); err == nil {
		t.Error("no error with all replicas down")
	}
	if _, _, err := r.Since(0); err == nil {
		t.Error("no error with all replicas down")
	}
	if _, err := r.Publish([]*updates.Transaction{txn("a", 1)}); err == nil {
		t.Error("no error with all replicas down")
	}
}

func TestAntiEntropy(t *testing.T) {
	a, b := NewMemoryStore(), NewMemoryStore()
	ta := txn("a", 1, updates.Insert("R", tup("x")))
	tb := txn("b", 1, updates.Insert("R", tup("y")))
	if _, err := a.Publish([]*updates.Transaction{ta}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish([]*updates.Transaction{tb}); err != nil {
		t.Fatal(err)
	}
	AntiEntropy(a, b)
	at, ae, _ := a.Since(0)
	bt, be, _ := b.Since(0)
	if len(at) != 2 || len(bt) != 2 {
		t.Errorf("after anti-entropy: a=%d b=%d", len(at), len(bt))
	}
	if ae != be {
		t.Errorf("epochs diverge: %d vs %d", ae, be)
	}
	// Idempotent.
	AntiEntropy(a, b)
	at2, _, _ := a.Since(0)
	if len(at2) != 2 {
		t.Errorf("anti-entropy not idempotent: %d", len(at2))
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := NewServer(NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			c := NewClient(srv.Addr())
			for i := 0; i < 10; i++ {
				tx := txn("peer", uint64(g*100+i), updates.Insert("R", tup("v")))
				if _, err := c.Publish([]*updates.Transaction{tx}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	all, epoch, err := NewClient(srv.Addr()).Since(0)
	if err != nil || len(all) != 80 || epoch != 80 {
		t.Errorf("final: %d txns at epoch %d, err %v", len(all), epoch, err)
	}
}
