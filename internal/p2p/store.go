// Package p2p implements the CDSS's published-update store: the archive
// (Figure 1 of the paper) that saves published transactions and makes them
// available to every participant — including while the publisher is offline
// (demo scenario 5). The paper stores published transactions in a
// peer-to-peer distributed database "though one can also use other
// methods"; this package provides an in-process store plus a replicated
// TCP store that exercises the same code paths (durable publish, epoch
// catch-up, fetch from any live replica).
package p2p

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/updates"
)

// ErrAlreadyPublished reports a transaction id published twice. Identity
// survives the TCP store protocol: the server tags the response with a wire
// error code and Client rebuilds the sentinel, so errors.Is works the same
// against in-process and remote stores.
var ErrAlreadyPublished = errors.New("p2p: transaction already published")

// Store is the published-transaction archive. Each successful Publish
// advances the logical clock (epoch); Since(e) returns every transaction
// published after epoch e in causal order.
type Store interface {
	// Publish archives the transactions atomically, assigning them the
	// next epoch, which is returned.
	Publish(txns []*updates.Transaction) (uint64, error)
	// Since returns transactions with epoch > since in publish order, plus
	// the current epoch.
	Since(since uint64) ([]*updates.Transaction, uint64, error)
	// Epoch returns the current logical clock value.
	Epoch() (uint64, error)
}

// MemoryStore is the in-process Store implementation; safe for concurrent
// use.
type MemoryStore struct {
	mu    sync.RWMutex
	epoch uint64
	log   []*updates.Transaction
	seen  map[updates.TxnID]bool
}

// NewMemoryStore creates an empty store at epoch 0.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{seen: map[updates.TxnID]bool{}}
}

// Publish archives transactions and advances the epoch.
func (s *MemoryStore) Publish(txns []*updates.Transaction) (uint64, error) {
	if len(txns) == 0 {
		return s.Epoch()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range txns {
		if s.seen[t.ID] {
			return 0, fmt.Errorf("%w: %s", ErrAlreadyPublished, t.ID)
		}
	}
	s.epoch++
	for _, t := range txns {
		t.Epoch = s.epoch
		s.seen[t.ID] = true
		s.log = append(s.log, t)
	}
	return s.epoch, nil
}

// Since returns transactions published after the given epoch.
func (s *MemoryStore) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*updates.Transaction
	for _, t := range s.log {
		if t.Epoch > since {
			out = append(out, t)
		}
	}
	return out, s.epoch, nil
}

// Epoch returns the current epoch.
func (s *MemoryStore) Epoch() (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch, nil
}

// Len returns the number of archived transactions.
func (s *MemoryStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// prepare validates that the batch is publishable and returns the epoch it
// would be assigned, without mutating the store. Durable stores call it
// before writing to disk so that a validation failure leaves no trace, and
// commit afterwards so the in-memory state never runs ahead of the log.
// Callers must serialize prepare/commit pairs externally.
func (s *MemoryStore) prepare(txns []*updates.Transaction) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dup := map[updates.TxnID]bool{}
	for _, t := range txns {
		if s.seen[t.ID] || dup[t.ID] {
			return 0, fmt.Errorf("%w: %s", ErrAlreadyPublished, t.ID)
		}
		dup[t.ID] = true
	}
	return s.epoch + 1, nil
}

// commit applies a batch validated by prepare at the epoch prepare returned.
func (s *MemoryStore) commit(txns []*updates.Transaction, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.epoch {
		s.epoch = epoch
	}
	for _, t := range txns {
		t.Epoch = epoch
		s.seen[t.ID] = true
		s.log = append(s.log, t)
	}
}

// merge folds remote transactions into the store during anti-entropy,
// keeping the maximum epoch. Duplicates are skipped.
func (s *MemoryStore) merge(txns []*updates.Transaction, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range txns {
		if s.seen[t.ID] {
			continue
		}
		s.seen[t.ID] = true
		s.log = append(s.log, t)
	}
	sort.SliceStable(s.log, func(i, j int) bool { return s.log[i].Epoch < s.log[j].Epoch })
	if epoch > s.epoch {
		s.epoch = epoch
	}
}
