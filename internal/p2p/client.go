package p2p

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"orchestra/internal/updates"
)

// Client implements Store over a TCP connection to one Server. A fresh
// connection is dialed per request — reconciliation is infrequent and this
// keeps intermittent-connectivity behavior honest (demo scenario 5: a
// request either reaches a live replica or fails cleanly).
type Client struct {
	addr    string
	timeout time.Duration
	// ctx, when set via WithContext, bounds every request: cancellation
	// aborts the dial and unblocks in-flight I/O.
	ctx context.Context
}

// DefaultClientTimeout bounds each request's dial and I/O when no explicit
// timeout is configured.
const DefaultClientTimeout = 5 * time.Second

// NewClient creates a client for the server at addr with the default
// per-request timeout.
func NewClient(addr string) *Client { return NewClientWith(addr, 0) }

// NewClientWith is NewClient with an explicit per-request dial/IO timeout;
// timeout <= 0 selects DefaultClientTimeout.
func NewClientWith(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	return &Client{addr: addr, timeout: timeout}
}

// WithContext returns a client whose requests additionally honor ctx:
// cancellation aborts the dial and any blocked read or write, and the
// returned error is the context's. The receiver is unchanged.
func (c *Client) WithContext(ctx context.Context) *Client {
	cp := *c
	cp.ctx = ctx
	return &cp
}

func (c *Client) roundTrip(req request) (response, error) {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ce := ctx.Err(); ce != nil {
			return response{}, ce
		}
		return response{}, fmt.Errorf("p2p: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(c.timeout))
	// The watcher yanks the deadline on cancellation so a blocked read or
	// write returns immediately instead of waiting out the full timeout.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-done:
		}
	}()
	fail := func(stage string, err error) (response, error) {
		if ce := ctx.Err(); ce != nil {
			return response{}, ce
		}
		return response{}, fmt.Errorf("p2p: %s %s: %w", stage, c.addr, err)
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		return fail("send to", err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return fail("recv from", err)
	}
	if resp.Error != "" {
		if s := sentinelForCode(resp.Code); s != nil {
			return response{}, fmt.Errorf("p2p: server %s: %w", c.addr, &wireError{msg: resp.Error, sentinel: s})
		}
		return response{}, fmt.Errorf("p2p: server %s: %s", c.addr, resp.Error)
	}
	return resp, nil
}

// Publish implements Store.
func (c *Client) Publish(txns []*updates.Transaction) (uint64, error) {
	req := request{Op: "publish"}
	for _, t := range txns {
		req.Txns = append(req.Txns, EncodeTxn(t))
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	// Mirror the server-side epoch assignment locally so the caller's
	// transaction objects agree with the archive.
	for _, t := range txns {
		t.Epoch = resp.Epoch
	}
	return resp.Epoch, nil
}

// Since implements Store.
func (c *Client) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	resp, err := c.roundTrip(request{Op: "since", Epoch: since})
	if err != nil {
		return nil, 0, err
	}
	var out []*updates.Transaction
	for _, w := range resp.Txns {
		t, err := DecodeTxn(w)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, t)
	}
	return out, resp.Epoch, nil
}

// Epoch implements Store.
func (c *Client) Epoch() (uint64, error) {
	resp, err := c.roundTrip(request{Op: "epoch"})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// ReplicatedStore fans a Store out over several replicas: publishes go to
// every reachable replica (at least one must succeed), reads come from the
// reachable replica with the highest epoch. With the archive replicated, a
// publisher can go offline and other peers still retrieve its transactions.
type ReplicatedStore struct {
	mu       sync.Mutex
	replicas []Store
}

// NewReplicatedStore wraps the given replicas.
func NewReplicatedStore(replicas ...Store) *ReplicatedStore {
	return &ReplicatedStore{replicas: replicas}
}

// Publish implements Store: best-effort to all replicas, error only if none
// accepted. Epoch is the maximum assigned.
func (r *ReplicatedStore) Publish(txns []*updates.Transaction) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best uint64
	okCount := 0
	var firstErr error
	for _, rep := range r.replicas {
		epoch, err := rep.Publish(txns)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
		if epoch > best {
			best = epoch
		}
	}
	if okCount == 0 {
		return 0, fmt.Errorf("p2p: publish failed on all %d replicas: %v", len(r.replicas), firstErr)
	}
	return best, nil
}

// Since implements Store: reads from the reachable replica with the highest
// epoch.
func (r *ReplicatedStore) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var bestTxns []*updates.Transaction
	var bestEpoch uint64
	reachable := false
	var firstErr error
	for _, rep := range r.replicas {
		txns, epoch, err := rep.Since(since)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !reachable || epoch > bestEpoch {
			bestTxns, bestEpoch = txns, epoch
		}
		reachable = true
	}
	if !reachable {
		return nil, 0, fmt.Errorf("p2p: all %d replicas unreachable: %v", len(r.replicas), firstErr)
	}
	return bestTxns, bestEpoch, nil
}

// Epoch implements Store.
func (r *ReplicatedStore) Epoch() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best uint64
	reachable := false
	var firstErr error
	for _, rep := range r.replicas {
		epoch, err := rep.Epoch()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if epoch > best {
			best = epoch
		}
		reachable = true
	}
	if !reachable {
		return 0, fmt.Errorf("p2p: all %d replicas unreachable: %v", len(r.replicas), firstErr)
	}
	return best, nil
}

// AntiEntropy copies missing transactions between two memory stores so
// replicas converge (used by the replica maintenance loop and tests).
func AntiEntropy(a, b *MemoryStore) {
	at, ae, _ := a.Since(0)
	bt, be, _ := b.Since(0)
	a.merge(bt, be)
	b.merge(at, ae)
}
