package p2p

import (
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/updates"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	t2 := txn("b", 1, updates.Insert("R", tup("y")))
	if _, err := fs.Publish([]*updates.Transaction{t1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Publish([]*updates.Transaction{t2}); err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 2 {
		t.Errorf("Len = %d", fs.Len())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log replays.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, epoch, err := fs2.Since(0)
	if err != nil || len(got) != 2 || epoch != 2 {
		t.Fatalf("after reopen: %d txns at epoch %d, %v", len(got), epoch, err)
	}
	if got[0].ID != t1.ID || got[1].ID != t2.ID {
		t.Errorf("order lost: %v %v", got[0].ID, got[1].ID)
	}
	if got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Errorf("epochs lost: %d %d", got[0].Epoch, got[1].Epoch)
	}
	// Publishing continues from the recovered epoch.
	t3 := txn("c", 1, updates.Insert("R", tup("z")))
	e, err := fs2.Publish([]*updates.Transaction{t3})
	if err != nil || e != 3 {
		t.Errorf("continue publish: epoch %d, %v", e, err)
	}
	// Duplicate detection survives restart.
	if _, err := fs2.Publish([]*updates.Transaction{txn("a", 1)}); err == nil {
		t.Error("duplicate accepted after restart")
	}
}

func TestFileStoreEmptyPublish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	e, err := fs.Publish(nil)
	if err != nil || e != 0 {
		t.Errorf("empty publish: %d %v", e, err)
	}
}

func TestFileStoreCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("corrupt log accepted")
	}
	// Bad wire op inside valid JSON.
	if err := os.WriteFile(path, []byte(`{"epoch":1,"txns":[{"peer":"a","seq":1,"updates":[{"rel":"R","op":9}]}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("corrupt txn accepted")
	}
}

func TestFileStoreServedOverTCP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// A durable TCP replica: Server backed directly by the FileStore.
	srv, err := NewServer(fs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	if _, err := c.Publish([]*updates.Transaction{txn("a", 1, updates.Insert("R", tup("x")))}); err != nil {
		t.Fatal(err)
	}
	got, e, err := c.Since(0)
	if err != nil || len(got) != 1 || e != 1 {
		t.Fatalf("served from file store: %d txns at %d, %v", len(got), e, err)
	}
	// The published transaction is durable in the log file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("log file empty after TCP publish")
	}
}
