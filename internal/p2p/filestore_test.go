package p2p

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/updates"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	t2 := txn("b", 1, updates.Insert("R", tup("y")))
	if _, err := fs.Publish([]*updates.Transaction{t1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Publish([]*updates.Transaction{t2}); err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 2 {
		t.Errorf("Len = %d", fs.Len())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log replays.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, epoch, err := fs2.Since(0)
	if err != nil || len(got) != 2 || epoch != 2 {
		t.Fatalf("after reopen: %d txns at epoch %d, %v", len(got), epoch, err)
	}
	if got[0].ID != t1.ID || got[1].ID != t2.ID {
		t.Errorf("order lost: %v %v", got[0].ID, got[1].ID)
	}
	if got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Errorf("epochs lost: %d %d", got[0].Epoch, got[1].Epoch)
	}
	// Publishing continues from the recovered epoch.
	t3 := txn("c", 1, updates.Insert("R", tup("z")))
	e, err := fs2.Publish([]*updates.Transaction{t3})
	if err != nil || e != 3 {
		t.Errorf("continue publish: epoch %d, %v", e, err)
	}
	// Duplicate detection survives restart.
	if _, err := fs2.Publish([]*updates.Transaction{txn("a", 1)}); err == nil {
		t.Error("duplicate accepted after restart")
	}
}

func TestFileStoreEmptyPublish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	e, err := fs.Publish(nil)
	if err != nil || e != 0 {
		t.Errorf("empty publish: %d %v", e, err)
	}
}

func TestFileStoreCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("corrupt log accepted")
	}
	// Bad wire op inside valid JSON.
	if err := os.WriteFile(path, []byte(`{"epoch":1,"txns":[{"peer":"a","seq":1,"updates":[{"rel":"R","op":9}]}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("corrupt txn accepted")
	}
}

// A torn final record — unterminated, mid-append crash — must not fail the
// open: the store recovers the durable prefix and keeps accepting publishes.
func TestFileStoreTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := fs.Publish([]*updates.Transaction{txn("p", uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	fs.Close()
	// Crash mid-append: a partial record with no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"epoch":4,"txns":[{"pe`)
	f.Close()

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("torn tail failed the open: %v", err)
	}
	if fs2.Len() != 3 {
		t.Fatalf("recovered %d txns, want 3", fs2.Len())
	}
	if e, _ := fs2.Epoch(); e != 3 {
		t.Fatalf("recovered epoch %d, want 3", e)
	}
	// The torn bytes are gone: publishing and reopening work cleanly.
	if e, err := fs2.Publish([]*updates.Transaction{txn("p", 4)}); err != nil || e != 4 {
		t.Fatalf("publish after repair: %d %v", e, err)
	}
	fs2.Close()
	fs3, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer fs3.Close()
	if fs3.Len() != 4 {
		t.Fatalf("after repair: %d txns, want 4", fs3.Len())
	}
}

// A final record whose JSON is complete but whose newline was lost keeps its
// data: the open repairs the terminator instead of dropping a durable batch.
func TestFileStoreUnterminatedFinalRecordKept(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.Publish([]*updates.Transaction{txn("p", 1)})
	fs.Publish([]*updates.Transaction{txn("p", 2)})
	fs.Close()
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-1], 0o644) // chop only the final '\n'

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Len() != 2 {
		t.Fatalf("lost a durable record: Len = %d", fs2.Len())
	}
	if e, err := fs2.Publish([]*updates.Transaction{txn("p", 3)}); err != nil || e != 3 {
		t.Fatalf("publish after terminator repair: %d %v", e, err)
	}
	fs2.Close()
	fs3, err := OpenFileStore(path)
	if err != nil || fs3.Len() != 3 {
		t.Fatalf("records merged across the repaired boundary: %v, Len=%d", err, fs3.Len())
	}
	fs3.Close()
}

// Randomized cut harness for the file store: for arbitrary crash points the
// reopened store holds exactly the records whose bytes fully survived.
func TestFileStoreRandomizedCutRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 12
	for i := 1; i <= batches; i++ {
		if _, err := fs.Publish([]*updates.Transaction{txn("p", uint64(i), updates.Insert("R", tup("v")))}); err != nil {
			t.Fatal(err)
		}
	}
	fs.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Line ends (offset just past each '\n').
	var ends []int
	for i, b := range data {
		if b == '\n' {
			ends = append(ends, i+1)
		}
	}
	if len(ends) != batches {
		t.Fatalf("%d records on disk, want %d", len(ends), batches)
	}
	rng := rand.New(rand.NewSource(17))
	cuts := []int{0, 1, len(data) - 1, len(data)}
	for len(cuts) < 20 {
		cuts = append(cuts, rng.Intn(len(data)))
	}
	for _, cut := range cuts {
		cp := filepath.Join(t.TempDir(), "store.log")
		if err := os.WriteFile(cp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// A record survives when all its JSON bytes do — with or without the
		// trailing newline (the open repairs a lost terminator).
		survived := 0
		for _, e := range ends {
			if cut >= e-1 {
				survived++
			}
		}
		re, err := OpenFileStore(cp)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got, epoch, err := re.Since(0)
		if err != nil || len(got) != survived || epoch != uint64(survived) {
			t.Fatalf("cut %d: recovered %d txns at epoch %d (%v), want %d", cut, len(got), epoch, err, survived)
		}
		for i, g := range got {
			if g.ID.Seq != uint64(i+1) {
				t.Fatalf("cut %d: record %d is %v", cut, i, g.ID)
			}
		}
		re.Close()
	}
}

func TestFileStoreServedOverTCP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// A durable TCP replica: Server backed directly by the FileStore.
	srv, err := NewServer(fs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	if _, err := c.Publish([]*updates.Transaction{txn("a", 1, updates.Insert("R", tup("x")))}); err != nil {
		t.Fatal(err)
	}
	got, e, err := c.Since(0)
	if err != nil || len(got) != 1 || e != 1 {
		t.Fatalf("served from file store: %d txns at %d, %v", len(got), e, err)
	}
	// The published transaction is durable in the log file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("log file empty after TCP publish")
	}
}
