package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/lsm"
	"orchestra/internal/updates"
)

func openDurable(t *testing.T, dir string) (*lsm.DB, *DurableStore) {
	t.Helper()
	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDurableStore(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ds
}

func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurable(t, dir)
	t1 := txn("a", 1, updates.Insert("R", tup("x")))
	t2 := txn("b", 1, updates.Insert("R", tup("y")))
	if e, err := ds.Publish([]*updates.Transaction{t1}); err != nil || e != 1 {
		t.Fatalf("publish 1: %d %v", e, err)
	}
	if e, err := ds.Publish([]*updates.Transaction{t2}); err != nil || e != 2 {
		t.Fatalf("publish 2: %d %v", e, err)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d", ds.Len())
	}
	if _, err := ds.Publish([]*updates.Transaction{txn("a", 1)}); !errors.Is(err, ErrAlreadyPublished) {
		t.Errorf("duplicate publish: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: epoch, order, and dedup state all recover from the LSM.
	db2, ds2 := openDurable(t, dir)
	defer db2.Close()
	got, epoch, err := ds2.Since(0)
	if err != nil || len(got) != 2 || epoch != 2 {
		t.Fatalf("after reopen: %d txns at epoch %d, %v", len(got), epoch, err)
	}
	if got[0].ID != t1.ID || got[1].ID != t2.ID {
		t.Errorf("order lost: %v %v", got[0].ID, got[1].ID)
	}
	if got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Errorf("epochs lost: %d %d", got[0].Epoch, got[1].Epoch)
	}
	if tail, _, err := ds2.Since(1); err != nil || len(tail) != 1 || tail[0].ID != t2.ID {
		t.Fatalf("since(1): %v %v", tail, err)
	}
	if e, err := ds2.Publish([]*updates.Transaction{txn("c", 1, updates.Insert("R", tup("z")))}); err != nil || e != 3 {
		t.Errorf("continue publish: %d %v", e, err)
	}
	if _, err := ds2.Publish([]*updates.Transaction{txn("a", 1)}); !errors.Is(err, ErrAlreadyPublished) {
		t.Errorf("duplicate accepted after restart: %v", err)
	}
}

func TestDurableStoreBatchIsAtomic(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurable(t, dir)
	defer db.Close()
	// One PublishAll window: many transactions, one epoch, one batch.
	batch := []*updates.Transaction{
		txn("a", 1, updates.Insert("R", tup("x"))),
		txn("a", 2, updates.Insert("R", tup("y"))),
		txn("b", 1, updates.Insert("R", tup("z"))),
	}
	e, err := ds.Publish(batch)
	if err != nil || e != 1 {
		t.Fatalf("publish: %d %v", e, err)
	}
	got, _, err := ds.Since(0)
	if err != nil || len(got) != 3 {
		t.Fatalf("since: %d %v", len(got), err)
	}
	for i, g := range got {
		if g.Epoch != 1 || g.ID != batch[i].ID {
			t.Fatalf("txn %d: %v epoch %d", i, g.ID, g.Epoch)
		}
	}
	// An intra-batch duplicate rejects the whole batch, leaving no trace.
	if _, err := ds.Publish([]*updates.Transaction{txn("c", 1), txn("c", 1)}); !errors.Is(err, ErrAlreadyPublished) {
		t.Fatalf("intra-batch duplicate: %v", err)
	}
	if ds.Len() != 3 {
		t.Fatalf("failed publish left traces: Len = %d", ds.Len())
	}
	if _, err := ds.Publish([]*updates.Transaction{txn("c", 1)}); err != nil {
		t.Fatalf("peer c's txn should still be publishable: %v", err)
	}
}

// walFrameEnds parses the lsm WAL frame format ([4B LE len][4B CRC][payload])
// from outside the package: the cut harness needs frame boundaries to compute
// the expected durable prefix.
func walFrameEnds(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const hdr = 8
	var ends []int
	off := 0
	for off+hdr <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+hdr+n > len(data) {
			break
		}
		off += hdr + n
		ends = append(ends, off)
	}
	return ends
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// The store-level crash harness: publish through a DurableStore, abandon the
// DB without Close (all state is the synced WAL), cut the WAL at randomized
// byte offsets, reopen. The recovered archive must be exactly the longest
// durable prefix of published batches — and the lost suffix must be
// republishable, because its seen markers died with it.
func TestDurableStoreRandomizedCutRecovery(t *testing.T) {
	src := t.TempDir()
	db, ds := openDurable(t, src)
	const batches = 20
	for i := 1; i <= batches; i++ {
		if _, err := ds.Publish([]*updates.Transaction{txn("p", uint64(i), updates.Insert("R", tup(fmt.Sprintf("v%02d", i))))}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: no Close, no flush; db deliberately leaked.
	_ = db
	wals, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("want one wal segment, got %v (%v)", wals, err)
	}
	ends := walFrameEnds(t, wals[0])
	if len(ends) != batches {
		t.Fatalf("found %d frames, want %d", len(ends), batches)
	}
	size := ends[len(ends)-1]

	rng := rand.New(rand.NewSource(5))
	cuts := []int{0, 3, size - 1, size}
	for len(cuts) < 16 {
		cuts = append(cuts, rng.Intn(size))
	}
	for _, cut := range cuts {
		dst := t.TempDir()
		copyTree(t, src, dst)
		if err := os.Truncate(filepath.Join(dst, filepath.Base(wals[0])), int64(cut)); err != nil {
			t.Fatal(err)
		}
		survived := 0
		for _, e := range ends {
			if e <= cut {
				survived++
			}
		}
		db2, ds2 := openDurable(t, dst)
		got, epoch, err := ds2.Since(0)
		if err != nil {
			t.Fatalf("cut %d: since: %v", cut, err)
		}
		if epoch != uint64(survived) || len(got) != survived {
			t.Fatalf("cut %d: recovered %d txns at epoch %d, want %d", cut, len(got), epoch, survived)
		}
		for i, g := range got {
			if g.ID.Seq != uint64(i+1) || g.Epoch != uint64(i+1) {
				t.Fatalf("cut %d: txn %d is %v@%d", cut, i, g.ID, g.Epoch)
			}
		}
		// The first lost transaction is republishable; the last surviving one
		// is still a duplicate.
		if survived > 0 {
			if _, err := ds2.Publish([]*updates.Transaction{txn("p", uint64(survived))}); !errors.Is(err, ErrAlreadyPublished) {
				t.Fatalf("cut %d: surviving txn not deduped: %v", cut, err)
			}
		}
		if survived < batches {
			if e, err := ds2.Publish([]*updates.Transaction{txn("p", uint64(survived+1))}); err != nil || e != uint64(survived+1) {
				t.Fatalf("cut %d: republish lost txn: %d %v", cut, e, err)
			}
		}
		db2.Close()
	}
}
