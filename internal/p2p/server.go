package p2p

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"orchestra/internal/updates"
)

// Server exposes a Store over TCP with a JSON-lines protocol: one request
// per line, one response per line. It plays the role of one node of the
// paper's distributed update store.
type Server struct {
	store    Store
	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
	PeerAddr string // informational
}

// NewServer starts a store server on addr (e.g. "127.0.0.1:0"). Any Store
// implementation can back a replica — in-memory for tests, FileStore for a
// durable archive.
func NewServer(store Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the underlying store (for anti-entropy between replicas).
func (s *Server) Store() Store { return s.store }

// Close stops the server and drops open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(response{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		_ = enc.Encode(s.handle(req))
	}
}

func (s *Server) handle(req request) response {
	switch req.Op {
	case "publish":
		txns := make([]*updates.Transaction, 0, len(req.Txns))
		for _, w := range req.Txns {
			t, err := DecodeTxn(w)
			if err != nil {
				return response{Error: err.Error()}
			}
			txns = append(txns, t)
		}
		epoch, err := s.store.Publish(txns)
		if err != nil {
			return response{Error: err.Error(), Code: errCodeFor(err)}
		}
		return response{OK: true, Epoch: epoch}
	case "since":
		txns, epoch, err := s.store.Since(req.Epoch)
		if err != nil {
			return response{Error: err.Error()}
		}
		resp := response{OK: true, Epoch: epoch}
		for _, t := range txns {
			resp.Txns = append(resp.Txns, EncodeTxn(t))
		}
		return resp
	case "epoch":
		epoch, err := s.store.Epoch()
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Epoch: epoch}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
