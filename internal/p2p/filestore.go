package p2p

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"orchestra/internal/updates"
)

// FileStore is a durable Store: an in-memory store backed by an append-only
// JSON-lines log. The paper's architecture calls for the archive to survive
// participants being "only intermittently connected"; FileStore makes it
// survive the store process itself restarting. Each Publish appends one
// record (fsynced) before acknowledging.
type FileStore struct {
	mu   sync.Mutex
	mem  *MemoryStore
	f    *os.File
	path string
}

// logRecord is one published batch on disk.
type logRecord struct {
	Epoch uint64    `json:"epoch"`
	Txns  []WireTxn `json:"txns"`
}

// OpenFileStore opens (or creates) a file-backed store, replaying any
// existing log into memory. A torn final record — the signature of a crash
// mid-append — is truncated away with a warning, recovering the longest
// durable prefix; a record that fails to parse anywhere before the tail is
// real corruption and fails the open.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("p2p: open store log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("p2p: read store log: %w", err)
	}
	mem := NewMemoryStore()
	truncAt := int64(-1) // byte offset of a torn tail to cut, if any
	needNL := false      // final record durable but missing its newline
	off, line := 0, 0
	for off < len(data) {
		line++
		nl := bytes.IndexByte(data[off:], '\n')
		var raw []byte
		var end int
		if nl >= 0 {
			raw, end = data[off:off+nl], off+nl+1
		} else {
			raw, end = data[off:], len(data)
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			off = end
			continue
		}
		rec, txns, err := decodeLogRecord(raw)
		if err != nil {
			if nl < 0 {
				// Unterminated AND unparsable: each Publish is one
				// Write(record+'\n'), so a missing terminator on the final
				// chunk is the signature of a crash mid-append. Drop it and
				// keep the durable prefix. A terminated record that fails to
				// parse is real corruption and still fails the open.
				log.Printf("p2p: store log %s: truncating torn record at line %d (offset %d): %v", path, line, off, err)
				truncAt = int64(off)
				break
			}
			f.Close()
			return nil, fmt.Errorf("p2p: corrupt store log %s line %d: %v", path, line, err)
		}
		mem.merge(txns, rec.Epoch)
		if nl < 0 {
			// Parsed fine but unterminated (crash after the payload bytes,
			// before the newline): keep it, and restore the record separator
			// so the next append starts a fresh line.
			needNL = true
		}
		off = end
	}
	if truncAt >= 0 {
		if err := f.Truncate(truncAt); err != nil {
			f.Close()
			return nil, fmt.Errorf("p2p: truncate torn store log: %w", err)
		}
	}
	// Position at end for appends.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	if needNL {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("p2p: repair store log terminator: %w", err)
		}
	}
	return &FileStore{mem: mem, f: f, path: path}, nil
}

// decodeLogRecord parses one JSON line into its transactions.
func decodeLogRecord(raw []byte) (logRecord, []*updates.Transaction, error) {
	var rec logRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return rec, nil, err
	}
	txns := make([]*updates.Transaction, 0, len(rec.Txns))
	for _, w := range rec.Txns {
		t, err := DecodeTxn(w)
		if err != nil {
			return rec, nil, err
		}
		t.Epoch = rec.Epoch
		txns = append(txns, t)
	}
	return rec, txns, nil
}

// Publish implements Store: the batch is durably appended and fsynced
// BEFORE the in-memory state merges it. Ordering matters — if the append or
// sync fails, the store must not have acknowledged state that disk never
// saw, or a restart would silently lose transactions that readers already
// observed.
func (s *FileStore) Publish(txns []*updates.Transaction) (uint64, error) {
	if len(txns) == 0 {
		return s.Epoch()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch, err := s.mem.prepare(txns)
	if err != nil {
		return 0, err
	}
	rec := logRecord{Epoch: epoch}
	for _, t := range txns {
		w := EncodeTxn(t)
		w.Epoch = epoch
		rec.Txns = append(rec.Txns, w)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	if _, err := s.f.Write(append(data, '\n')); err != nil {
		return 0, fmt.Errorf("p2p: append store log: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return 0, fmt.Errorf("p2p: sync store log: %w", err)
	}
	s.mem.commit(txns, epoch)
	return epoch, nil
}

// Since implements Store.
func (s *FileStore) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	return s.mem.Since(since)
}

// Epoch implements Store.
func (s *FileStore) Epoch() (uint64, error) { return s.mem.Epoch() }

// Len returns the number of archived transactions.
func (s *FileStore) Len() int { return s.mem.Len() }

// Close releases the log file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

var _ Store = (*FileStore)(nil)
var _ Store = (*MemoryStore)(nil)
var _ Store = (*Client)(nil)
var _ Store = (*ReplicatedStore)(nil)
