package p2p

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"orchestra/internal/updates"
)

// FileStore is a durable Store: an in-memory store backed by an append-only
// JSON-lines log. The paper's architecture calls for the archive to survive
// participants being "only intermittently connected"; FileStore makes it
// survive the store process itself restarting. Each Publish appends one
// record (fsynced) before acknowledging.
type FileStore struct {
	mu   sync.Mutex
	mem  *MemoryStore
	f    *os.File
	path string
}

// logRecord is one published batch on disk.
type logRecord struct {
	Epoch uint64    `json:"epoch"`
	Txns  []WireTxn `json:"txns"`
}

// OpenFileStore opens (or creates) a file-backed store, replaying any
// existing log into memory.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("p2p: open store log: %w", err)
	}
	mem := NewMemoryStore()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			f.Close()
			return nil, fmt.Errorf("p2p: corrupt store log %s line %d: %v", path, line, err)
		}
		txns := make([]*updates.Transaction, 0, len(rec.Txns))
		for _, w := range rec.Txns {
			t, err := DecodeTxn(w)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("p2p: corrupt store log %s line %d: %v", path, line, err)
			}
			t.Epoch = rec.Epoch
			txns = append(txns, t)
		}
		mem.merge(txns, rec.Epoch)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("p2p: read store log: %w", err)
	}
	// Position at end for appends.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{mem: mem, f: f, path: path}, nil
}

// Publish implements Store: the batch is durably appended before the
// in-memory state is updated and the new epoch acknowledged.
func (s *FileStore) Publish(txns []*updates.Transaction) (uint64, error) {
	if len(txns) == 0 {
		return s.Epoch()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch, err := s.mem.Publish(txns)
	if err != nil {
		return 0, err
	}
	rec := logRecord{Epoch: epoch}
	for _, t := range txns {
		rec.Txns = append(rec.Txns, EncodeTxn(t))
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	if _, err := s.f.Write(append(data, '\n')); err != nil {
		return 0, fmt.Errorf("p2p: append store log: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return 0, fmt.Errorf("p2p: sync store log: %w", err)
	}
	return epoch, nil
}

// Since implements Store.
func (s *FileStore) Since(since uint64) ([]*updates.Transaction, uint64, error) {
	return s.mem.Since(since)
}

// Epoch implements Store.
func (s *FileStore) Epoch() (uint64, error) { return s.mem.Epoch() }

// Len returns the number of archived transactions.
func (s *FileStore) Len() int { return s.mem.Len() }

// Close releases the log file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

var _ Store = (*FileStore)(nil)
var _ Store = (*MemoryStore)(nil)
var _ Store = (*Client)(nil)
var _ Store = (*ReplicatedStore)(nil)
