package lsm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the recovery root: a JSON document naming every live
// SSTable segment (oldest first), the next file number to allocate, and the
// WAL floor — the lowest WAL segment whose records are NOT yet covered by a
// flushed SSTable. Recovery opens the manifest, opens the listed segments,
// and replays WAL segments >= the floor. The manifest is replaced
// atomically (write temp, fsync, rename, fsync directory), so a crash
// during an update leaves either the old or the new manifest, never a torn
// one.

const manifestName = "MANIFEST"

type manifest struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// NextFile numbers the next SSTable segment.
	NextFile uint64 `json:"next_file"`
	// WALFloor is the lowest WAL segment sequence that must replay on open;
	// segments below it are fully contained in flushed SSTables.
	WALFloor uint64 `json:"wal_floor"`
	// Tables lists live segments oldest-first (later segments shadow
	// earlier ones).
	Tables []tableMeta `json:"tables"`
}

const manifestVersion = 1

func loadManifest(dir string) (*manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &manifest{Version: manifestVersion, NextFile: 1, WALFloor: 1}, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lsm: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false, fmt.Errorf("lsm: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, false, fmt.Errorf("lsm: manifest version %d not supported", m.Version)
	}
	return &m, true, nil
}

// save atomically replaces the manifest on disk.
func (m *manifest) save(dir string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("lsm: replace manifest: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms reject fsync on directories; that only weakens
	// durability of the rename, not consistency, so tolerate it.
	_ = d.Sync()
	return nil
}
