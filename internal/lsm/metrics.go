package lsm

import "orchestra/internal/obs"

// dbMetrics is the DB's set of resolved metric handles, bound once at Open.
// With no registry every handle is nil and recording is a nil check —
// Options.Metrics == nil therefore costs nothing measurable on the write
// path. The struct is copied by value into each sstReader so segment-level
// counters need no back-pointer to the DB.
type dbMetrics struct {
	fsyncNs      *obs.Histogram // lsm_wal_fsync_ns: commit fsync latency
	walAppends   *obs.Counter   // lsm_wal_appends_total: batches logged
	walBytes     *obs.Counter   // lsm_wal_bytes_total: payload bytes logged
	flushes      *obs.Counter   // lsm_flush_total: memtable→SSTable flushes
	compactions  *obs.Counter   // lsm_compaction_total: merge runs completed
	compactBytes *obs.Counter   // lsm_compaction_bytes_total: input bytes merged
	gets         *obs.Counter   // lsm_get_total: point lookups served
	bloomChecks  *obs.Counter   // lsm_bloom_checks_total: segment bloom probes
	bloomSkips   *obs.Counter   // lsm_bloom_skips_total: segments bloom ruled out
	blockReads   *obs.Counter   // lsm_block_reads_total: data blocks read+verified
}

func newDBMetrics(r *obs.Registry) dbMetrics {
	if r == nil {
		return dbMetrics{}
	}
	return dbMetrics{
		fsyncNs:      r.Histogram("lsm_wal_fsync_ns"),
		walAppends:   r.Counter("lsm_wal_appends_total"),
		walBytes:     r.Counter("lsm_wal_bytes_total"),
		flushes:      r.Counter("lsm_flush_total"),
		compactions:  r.Counter("lsm_compaction_total"),
		compactBytes: r.Counter("lsm_compaction_bytes_total"),
		gets:         r.Counter("lsm_get_total"),
		bloomChecks:  r.Counter("lsm_bloom_checks_total"),
		bloomSkips:   r.Counter("lsm_bloom_skips_total"),
		blockReads:   r.Counter("lsm_block_reads_total"),
	}
}
