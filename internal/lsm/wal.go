package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The write-ahead log is segmented: records append to wal-NNNNNN.log until
// the segment exceeds its size limit or a memtable flush rotates it. Each
// record is framed
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// so replay detects torn tails (a crash mid-append) byte-exactly: an
// incomplete frame or checksum mismatch at the end of the final segment is
// truncated away with a warning — the longest durable prefix wins — while
// the same damage anywhere else is reported as corruption, because rotation
// only ever happens after a successful sync and so a torn record cannot
// legitimately appear mid-log.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const walHeaderLen = 8

type wal struct {
	dir  string
	f    *os.File
	seq  uint64
	size int64
	// segLimit rotates the active segment when exceeded; rotation between
	// flushes keeps any one replay bounded without waiting for a flush.
	segLimit int64
	// scratch assembles one frame so a record reaches the kernel in a single
	// Write call.
	scratch []byte
}

func walName(seq uint64) string { return fmt.Sprintf("wal-%06d.log", seq) }

// walSeq parses a segment file name, ok=false for non-WAL files.
func walSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listWALs returns the segment sequence numbers present in dir, ascending.
func listWALs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := walSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// openWAL starts a fresh segment with the given sequence number.
func openWAL(dir string, seq uint64, segLimit int64) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: open wal segment: %w", err)
	}
	return &wal{dir: dir, f: f, seq: seq, segLimit: segLimit}, nil
}

// append frames and writes one record without syncing. Callers group
// records and call sync once per commit window (batched fsync).
func (w *wal) append(payload []byte) error {
	w.scratch = w.scratch[:0]
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, uint32(len(payload)))
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc32.Checksum(payload, crcTable))
	w.scratch = append(w.scratch, payload...)
	n, err := w.f.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("lsm: wal append: %w", err)
	}
	return nil
}

// sync makes everything appended so far durable.
func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("lsm: wal sync: %w", err)
	}
	return nil
}

// full reports whether the active segment passed its rotation threshold.
func (w *wal) full() bool { return w.segLimit > 0 && w.size >= w.segLimit }

// rotate syncs and closes the active segment and opens the next one.
func (w *wal) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("lsm: wal close: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(w.dir, walName(w.seq+1)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: open wal segment: %w", err)
	}
	w.f, w.seq, w.size = f, w.seq+1, 0
	return nil
}

func (w *wal) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL feeds every intact record of the listed segments, in order, to
// fn. A torn tail on the final segment is truncated in place (with a
// warning); damage anywhere else fails the replay.
func replayWAL(dir string, seqs []uint64, fn func(payload []byte) error) error {
	for i, seq := range seqs {
		last := i == len(seqs)-1
		if err := replaySegment(filepath.Join(dir, walName(seq)), last, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, allowTornTail bool, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("lsm: read wal segment: %w", err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		torn := ""
		if len(rest) < walHeaderLen {
			torn = "incomplete frame header"
		} else {
			n := int(binary.LittleEndian.Uint32(rest[:4]))
			want := binary.LittleEndian.Uint32(rest[4:8])
			if len(rest) < walHeaderLen+n {
				torn = "incomplete payload"
			} else if crc32.Checksum(rest[walHeaderLen:walHeaderLen+n], crcTable) != want {
				torn = "checksum mismatch"
			} else {
				if err := fn(rest[walHeaderLen : walHeaderLen+n]); err != nil {
					return err
				}
				off += walHeaderLen + n
				continue
			}
		}
		if !allowTornTail {
			return fmt.Errorf("lsm: corrupt wal record in %s at offset %d: %s", path, off, torn)
		}
		log.Printf("lsm: truncating torn wal tail in %s at offset %d (%s): keeping the longest durable prefix", path, off, torn)
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("lsm: truncate torn wal tail: %w", err)
		}
		return nil
	}
	return nil
}
