package lsm

import "bytes"

// Snapshot is a consistent point-in-time view of the DB. Taking one freezes
// the mutable memtable (an O(1) operation thanks to the slab layout — no
// copying, the slabs are simply never written again), so later writes and
// flushes cannot show through. Snapshots serve point reads and — the reason
// they exist — ordered batch scans that stream disk-resident relations
// straight into the pull-based iterator pipelines.
//
// Close releases the snapshot's references on the SSTable segments it pins;
// compaction can unlink segment files while snapshots still read them, and
// the bytes go away only when the last reader lets go.
type Snapshot struct {
	mems   []*memtable  // oldest first, all frozen
	tables []*sstReader // oldest first
	closed bool
}

// Snapshot captures the DB's current contents.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.mut.len() > 0 {
		db.imm = append(db.imm, db.mut)
		db.mut = newMemtable()
	}
	sn := &Snapshot{
		mems:   append([]*memtable(nil), db.imm...),
		tables: append([]*sstReader(nil), db.tables...),
	}
	for _, r := range sn.tables {
		r.ref()
	}
	return sn
}

// Close releases the snapshot. Using a closed snapshot is a bug; Close is
// idempotent.
func (sn *Snapshot) Close() {
	if sn.closed {
		return
	}
	sn.closed = true
	for _, r := range sn.tables {
		r.unref()
	}
}

// Get returns the value of key as of the snapshot.
func (sn *Snapshot) Get(key []byte) ([]byte, bool, error) {
	for i := len(sn.mems) - 1; i >= 0; i-- {
		if e, ok := sn.mems[i].get(key); ok {
			return getEntry(e)
		}
	}
	for i := len(sn.tables) - 1; i >= 0; i-- {
		val, del, ok, err := sn.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if del {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// Scan streams live keys in [lo, hi) in ascending order (nil bounds are
// open). fn returning false stops the scan. The key and value slices are
// only valid during the callback.
func (sn *Snapshot) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	it := sn.Iter(lo, hi)
	for it.Next() {
		if !fn(it.Key(), it.Value()) {
			return it.Err()
		}
	}
	return it.Err()
}

// Iter returns a pull-based iterator over live keys in [lo, hi) — the shape
// the PR 7 pipeline cursors consume: position with Next, read Key/Value,
// check Err at the end.
func (sn *Snapshot) Iter(lo, hi []byte) *Iterator {
	it := &Iterator{hi: hi}
	// Source order is priority: lower index wins key ties (newer data).
	// Memtables are newer than every table; within each group, later
	// elements are newer.
	for i := len(sn.mems) - 1; i >= 0; i-- {
		it.srcs = append(it.srcs, &memSource{entries: sn.mems[i].sortedEntries(), lo: lo})
	}
	for i := len(sn.tables) - 1; i >= 0; i-- {
		it.srcs = append(it.srcs, &sstSource{it: sn.tables[i].iter(lo)})
	}
	for _, s := range it.srcs {
		s.next()
	}
	return it
}

// source is one ordered input to the merge: a frozen memtable or a segment.
type source interface {
	valid() bool
	key() []byte
	val() []byte
	del() bool
	next()
	err() error
}

type memSource struct {
	entries []*mentry
	i       int
	started bool
	lo      []byte
}

func (s *memSource) next() {
	if !s.started {
		s.started = true
		s.i = 0
		if s.lo != nil {
			for s.i < len(s.entries) && s.entries[s.i].key < string(s.lo) {
				s.i++
			}
		}
		return
	}
	s.i++
}
func (s *memSource) valid() bool { return s.i < len(s.entries) }
func (s *memSource) key() []byte { return []byte(s.entries[s.i].key) }
func (s *memSource) val() []byte { return s.entries[s.i].val }
func (s *memSource) del() bool   { return s.entries[s.i].del }
func (s *memSource) err() error  { return nil }

type sstSource struct {
	it      *sstIter
	started bool
}

func (s *sstSource) next() {
	if !s.started {
		s.started = true // iter() already positioned at the first entry
		return
	}
	s.it.next()
}
func (s *sstSource) valid() bool { return s.it.valid }
func (s *sstSource) key() []byte { return s.it.cur.key }
func (s *sstSource) val() []byte { return s.it.cur.val }
func (s *sstSource) del() bool   { return s.it.cur.del }
func (s *sstSource) err() error  { return s.it.err }

// Iterator k-way-merges the snapshot's sources newest-first: for each key,
// the newest source wins and older versions (and tombstoned keys) are
// skipped.
type Iterator struct {
	srcs []source // index order = priority, 0 newest
	hi   []byte
	k    []byte
	v    []byte
	fail error
}

// Next advances to the next live key; it returns false at the end of the
// range or on error.
func (it *Iterator) Next() bool {
	for {
		// Find the minimal key; ties resolve to the lowest index (newest).
		win := -1
		for i, s := range it.srcs {
			if e := s.err(); e != nil {
				it.fail = e
				return false
			}
			if !s.valid() {
				continue
			}
			if win < 0 || bytes.Compare(s.key(), it.srcs[win].key()) < 0 {
				win = i
			}
		}
		if win < 0 {
			return false
		}
		k := it.srcs[win].key()
		if it.hi != nil && bytes.Compare(k, it.hi) >= 0 {
			return false
		}
		deleted := it.srcs[win].del()
		it.k = k
		it.v = it.srcs[win].val()
		// Advance every source sitting on this key (shadowed versions).
		for _, s := range it.srcs {
			for s.valid() && bytes.Equal(s.key(), k) {
				s.next()
			}
		}
		if deleted {
			continue
		}
		return true
	}
}

// Key returns the current key; valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.k }

// Value returns the current value; valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.v }

// Err returns the first error the iterator hit, if any.
func (it *Iterator) Err() error { return it.fail }
