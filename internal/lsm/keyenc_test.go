package lsm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"orchestra/internal/schema"
)

func randValue(rng *rand.Rand) schema.Value {
	switch rng.Intn(6) {
	case 0:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte(rng.Intn(256)) // arbitrary bytes, including 0x00 and 0xFF
		}
		return schema.String(string(b))
	case 1:
		return schema.LabeledNull(string(rune('a' + rng.Intn(4))))
	case 2:
		return schema.Int(rng.Int63n(2000) - 1000)
	case 3:
		return schema.Bool(rng.Intn(2) == 1)
	case 4:
		f := math.Trunc(rng.NormFloat64() * 100)
		return schema.Float(f)
	default:
		return schema.Int(int64(rng.Intn(5))) // dense collisions
	}
}

func randTuple(rng *rand.Rand) schema.Tuple {
	t := make(schema.Tuple, 1+rng.Intn(4))
	for i := range t {
		t[i] = randValue(rng)
	}
	return t
}

// The load-bearing property: bytewise order of encodings is exactly
// Tuple.Compare, so on-disk segment order is index order.
func TestTupleEncodingOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b := randTuple(rng), randTuple(rng)
		ea, eb := EncodeTuple(a), EncodeTuple(b)
		want := a.Compare(b)
		got := bytes.Compare(ea, eb)
		if sign(got) != sign(want) {
			t.Fatalf("order mismatch: %v vs %v: Compare=%d bytes.Compare=%d\n%x\n%x", a, b, want, got, ea, eb)
		}
	}
}

func TestTupleEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		tu := randTuple(rng)
		enc := EncodeTuple(tu)
		back, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", tu, err)
		}
		if !tu.Equal(back) {
			t.Fatalf("round trip: %v -> %v", tu, back)
		}
	}
}

func TestTuplePrefixSortsFirst(t *testing.T) {
	a := schema.NewTuple(schema.String("ab"))
	b := schema.NewTuple(schema.String("ab"), schema.Int(0))
	if bytes.Compare(EncodeTuple(a), EncodeTuple(b)) >= 0 {
		t.Fatal("prefix tuple must sort first")
	}
	// A string that extends another must also sort after it.
	c := schema.NewTuple(schema.String("ab\x00"))
	if bytes.Compare(EncodeTuple(a), EncodeTuple(c)) >= 0 {
		t.Fatal("extended string must sort after its prefix")
	}
}

func TestStringEncodingEdgeCases(t *testing.T) {
	cases := []string{"", "\x00", "\x00\x00", "a\x00b", "\xff", "a\x01", "\x00\x01"}
	for _, s := range cases {
		enc := AppendString(nil, s)
		got, rest, err := decodeString(enc)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("string %q: got %q rest %d err %v", s, got, len(rest), err)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
