// Package lsm is the durable storage tier beneath the CDSS: a
// log-structured merge engine with an order-preserving key encoding for
// schema tuples, a segmented CRC-framed write-ahead log with batched fsync,
// slab-backed memtables flushed to sorted checksummed SSTable segments
// (sparse index + bloom filter), size-tiered compaction, and crash recovery
// from a manifest + WAL replay. The upper layers (the p2p published-update
// archive and peer instance checkpoints) store their keyspaces side by side
// in one DB so a whole deployment shares a single WAL and group-commit
// window. See DESIGN.md §11.
package lsm

import (
	"encoding/binary"
	"fmt"
	"math"

	"orchestra/internal/schema"
)

// The key encoding is order-preserving: for any two tuples a and b,
// bytes.Compare(EncodeTuple(a), EncodeTuple(b)) equals a.Compare(b). That is
// what lets SSTable segments keep index orderings on disk — a range scan
// over an encoded prefix enumerates tuples in exactly the order the
// in-memory tables and iterator pipelines expect.
//
// Per value: one kind tag byte (schema.Kind values already sort in
// Value.Compare order), then a payload:
//
//   - strings and labeled nulls: raw bytes with 0x00 escaped as 0x00 0xFF,
//     terminated by 0x00 0x01 — the terminator sorts below every escaped or
//     literal byte, so prefixes sort first;
//   - ints and bools: 8-byte big-endian with the sign bit flipped;
//   - floats: IEEE-754 bits, sign-flipped for positives and complemented
//     for negatives (the classic total-order trick). -0.0 and +0.0 compare
//     equal in Value.Compare but encode distinctly, matching Value.Key's
//     injectivity.
//
// Values are self-delimiting, so tuple encodings concatenate and a tuple
// that is a strict prefix of another sorts first — exactly Tuple.Compare.

const (
	stringTerm1 = 0x00
	stringTerm2 = 0x01
	stringEsc   = 0xFF
)

// AppendString appends the order-preserving escaped-and-terminated encoding
// of s (no kind tag). Composite-key layers use it to build prefixes such as
// relation names that must sort correctly ahead of tuple bytes.
func AppendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			b = append(b, 0x00, stringEsc)
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, stringTerm1, stringTerm2)
}

// DecodeString decodes one AppendString-encoded string from the front of b,
// returning the string and the remaining bytes. Composite-key layers (the
// checkpoint keyspace) use it to take keys back apart.
func DecodeString(b []byte) (string, []byte, error) { return decodeString(b) }

func decodeString(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("lsm: truncated string encoding")
		}
		switch b[i+1] {
		case stringEsc:
			out = append(out, 0x00)
			i += 2
		case stringTerm2:
			return string(out), b[i+2:], nil
		default:
			return "", nil, fmt.Errorf("lsm: malformed string escape 0x%02x", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("lsm: unterminated string encoding")
}

// AppendValue appends the order-preserving encoding of one value.
func AppendValue(b []byte, v schema.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case schema.KindString, schema.KindLabeledNull:
		return AppendString(b, v.Str())
	case schema.KindInt:
		return binary.BigEndian.AppendUint64(b, uint64(v.IntVal())^(1<<63))
	case schema.KindBool:
		if v.BoolVal() {
			return append(b, 1)
		}
		return append(b, 0)
	case schema.KindFloat:
		u := math.Float64bits(v.FloatVal())
		if u&(1<<63) != 0 {
			u = ^u
		} else {
			u |= 1 << 63
		}
		return binary.BigEndian.AppendUint64(b, u)
	default: // KindNull: tag alone
		return b
	}
}

// DecodeValue decodes one value off the front of b, returning the rest.
func DecodeValue(b []byte) (schema.Value, []byte, error) {
	if len(b) == 0 {
		return schema.Value{}, nil, fmt.Errorf("lsm: empty value encoding")
	}
	kind := schema.Kind(b[0])
	b = b[1:]
	switch kind {
	case schema.KindString, schema.KindLabeledNull:
		s, rest, err := decodeString(b)
		if err != nil {
			return schema.Value{}, nil, err
		}
		if kind == schema.KindString {
			return schema.String(s), rest, nil
		}
		return schema.LabeledNull(s), rest, nil
	case schema.KindInt:
		if len(b) < 8 {
			return schema.Value{}, nil, fmt.Errorf("lsm: truncated int encoding")
		}
		u := binary.BigEndian.Uint64(b[:8])
		return schema.Int(int64(u ^ (1 << 63))), b[8:], nil
	case schema.KindBool:
		if len(b) < 1 {
			return schema.Value{}, nil, fmt.Errorf("lsm: truncated bool encoding")
		}
		return schema.Bool(b[0] == 1), b[1:], nil
	case schema.KindFloat:
		if len(b) < 8 {
			return schema.Value{}, nil, fmt.Errorf("lsm: truncated float encoding")
		}
		u := binary.BigEndian.Uint64(b[:8])
		if u&(1<<63) != 0 {
			u &^= 1 << 63
		} else {
			u = ^u
		}
		return schema.Float(math.Float64frombits(u)), b[8:], nil
	case schema.KindNull:
		return schema.Value{}, b, nil
	default:
		return schema.Value{}, nil, fmt.Errorf("lsm: unknown value kind %d", kind)
	}
}

// AppendTuple appends the order-preserving encoding of a whole tuple.
func AppendTuple(b []byte, t schema.Tuple) []byte {
	for _, v := range t {
		b = AppendValue(b, v)
	}
	return b
}

// EncodeTuple is AppendTuple into a fresh slice.
func EncodeTuple(t schema.Tuple) []byte { return AppendTuple(nil, t) }

// DecodeTuple decodes a tuple encoding produced by AppendTuple, consuming
// b entirely.
func DecodeTuple(b []byte) (schema.Tuple, error) {
	var t schema.Tuple
	for len(b) > 0 {
		v, rest, err := DecodeValue(b)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		b = rest
	}
	return t, nil
}
