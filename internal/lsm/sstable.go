package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// SSTable segment format (sst-NNNNNN.sst):
//
//	[data block]* [index block] [bloom block] [footer]
//
// Data blocks hold sorted entries, each framed
// `uvarint klen · uvarint (vlen<<1 | tombstone) · key · value`, split at
// ~BlockBytes boundaries. The index block is sparse — one entry per data
// block: the block's first key, its offset and length, and a CRC-32C over
// its bytes, verified on every read. The bloom block summarizes every key
// in the segment (10 bits/key, 7 probes) so point lookups skip segments
// that cannot contain the key. The fixed-size footer locates the index and
// bloom blocks, checksums them, and carries a magic number that guards
// against opening foreign or truncated files.

const (
	sstMagic     = 0x4f52434845535431 // "ORCHEST1"
	sstFooterLen = 8*4 + 4 + 8

	bloomBitsPerKey = 10
	bloomProbes     = 7
)

func sstName(num uint64) string { return fmt.Sprintf("sst-%06d.sst", num) }

// tableMeta is the manifest's record of one live segment.
type tableMeta struct {
	Num   uint64 `json:"num"`
	Size  int64  `json:"size"`
	Count int    `json:"count"`
	// Min and Max are the segment's first and last keys (inclusive),
	// base64-encoded in the manifest JSON.
	Min []byte `json:"min"`
	Max []byte `json:"max"`
}

type blockMeta struct {
	firstKey []byte
	off      uint64
	len      uint64
	crc      uint32
}

// bloomFilter is a classic double-hashing Bloom filter.
type bloomFilter struct {
	bits  []byte
	nbits uint64
}

func newBloom(nkeys int) bloomFilter {
	nbits := uint64(nkeys*bloomBitsPerKey + 64)
	return bloomFilter{bits: make([]byte, (nbits+7)/8), nbits: nbits}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	s := h.Sum64()
	h1 := s & 0xffffffff
	h2 := s >> 32
	if h2 == 0 {
		h2 = 0x9e3779b9
	}
	return h1, h2
}

func (b bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % b.nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b bloomFilter) mayContain(key []byte) bool {
	if b.nbits == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// sstEntry is one key/value (or tombstone) flowing into a writer.
type sstEntry struct {
	key []byte
	val []byte
	del bool
}

// writeSSTable writes entries (already sorted ascending, unique keys) as
// segment number num in dir, fsyncs it, and returns its manifest record.
func writeSSTable(dir string, num uint64, entries []sstEntry, blockBytes int) (tableMeta, error) {
	if len(entries) == 0 {
		return tableMeta{}, fmt.Errorf("lsm: writeSSTable with no entries")
	}
	if blockBytes <= 0 {
		blockBytes = 4096
	}
	path := filepath.Join(dir, sstName(num))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return tableMeta{}, fmt.Errorf("lsm: create sstable: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)

	bloom := newBloom(len(entries))
	var (
		index   []blockMeta
		block   []byte
		blockAt uint64
		off     uint64
		first   []byte
	)
	flushBlock := func() {
		if len(block) == 0 {
			return
		}
		index = append(index, blockMeta{
			firstKey: first,
			off:      blockAt,
			len:      uint64(len(block)),
			crc:      crc32.Checksum(block, crcTable),
		})
		w.Write(block)
		off += uint64(len(block))
		block = block[:0]
		first = nil
	}
	for _, e := range entries {
		bloom.add(e.key)
		if first == nil {
			first = append([]byte(nil), e.key...)
			blockAt = off
		}
		block = binary.AppendUvarint(block, uint64(len(e.key)))
		flag := uint64(len(e.val)) << 1
		if e.del {
			flag |= 1
		}
		block = binary.AppendUvarint(block, flag)
		block = append(block, e.key...)
		block = append(block, e.val...)
		if len(block) >= blockBytes {
			flushBlock()
		}
	}
	flushBlock()

	// Index block.
	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(len(index)))
	for _, bm := range index {
		meta = binary.AppendUvarint(meta, uint64(len(bm.firstKey)))
		meta = append(meta, bm.firstKey...)
		meta = binary.AppendUvarint(meta, bm.off)
		meta = binary.AppendUvarint(meta, bm.len)
		meta = binary.LittleEndian.AppendUint32(meta, bm.crc)
	}
	indexOff, indexLen := off, uint64(len(meta))
	// Bloom block.
	meta = binary.AppendUvarint(meta, bloom.nbits)
	meta = append(meta, bloom.bits...)
	bloomOff, bloomLen := indexOff+indexLen, uint64(len(meta))-indexLen
	metaCRC := crc32.Checksum(meta, crcTable)
	w.Write(meta)

	var footer [sstFooterLen]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint64(footer[8:], indexLen)
	binary.LittleEndian.PutUint64(footer[16:], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:], bloomLen)
	binary.LittleEndian.PutUint32(footer[32:], metaCRC)
	binary.LittleEndian.PutUint64(footer[36:], sstMagic)
	w.Write(footer[:])
	if err := w.Flush(); err != nil {
		return tableMeta{}, fmt.Errorf("lsm: write sstable: %w", err)
	}
	if err := f.Sync(); err != nil {
		return tableMeta{}, fmt.Errorf("lsm: sync sstable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return tableMeta{}, err
	}
	return tableMeta{
		Num:   num,
		Size:  st.Size(),
		Count: len(entries),
		Min:   append([]byte(nil), entries[0].key...),
		Max:   append([]byte(nil), entries[len(entries)-1].key...),
	}, nil
}

// sstReader serves point lookups and range scans over one open segment.
// The sparse index and bloom filter live in memory; data blocks are read
// (and checksum-verified) on demand.
type sstReader struct {
	f     *os.File
	meta  tableMeta
	index []blockMeta
	bloom bloomFilter
	// met carries the owning DB's metric handles (zero value = disabled);
	// copied in at open so reads need no DB back-pointer.
	met dbMetrics
	// refs counts owners (the DB plus live snapshots); the file closes when
	// it reaches zero, letting compaction unlink segments under snapshots.
	refs atomic.Int32
}

func openSSTable(dir string, meta tableMeta) (*sstReader, error) {
	path := filepath.Join(dir, sstName(meta.Num))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < sstFooterLen {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s truncated (%d bytes)", path, st.Size())
	}
	var footer [sstFooterLen]byte
	if _, err := f.ReadAt(footer[:], st.Size()-sstFooterLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read sstable footer: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[36:]) != sstMagic {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s has no valid footer magic", path)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	indexLen := binary.LittleEndian.Uint64(footer[8:])
	bloomLen := binary.LittleEndian.Uint64(footer[24:])
	wantCRC := binary.LittleEndian.Uint32(footer[32:])
	if indexOff+indexLen+bloomLen+sstFooterLen != uint64(st.Size()) {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s metadata does not span the file", path)
	}
	metaBytes := make([]byte, indexLen+bloomLen)
	if _, err := f.ReadAt(metaBytes, int64(indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read sstable metadata: %w", err)
	}
	if crc32.Checksum(metaBytes, crcTable) != wantCRC {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s metadata checksum mismatch", path)
	}
	r := &sstReader{f: f, meta: meta}
	buf := metaBytes
	nBlocks, n := binary.Uvarint(buf)
	if n <= 0 {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s malformed index", path)
	}
	buf = buf[n:]
	for i := uint64(0); i < nBlocks; i++ {
		klen, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)) < uint64(n)+klen+4 {
			f.Close()
			return nil, fmt.Errorf("lsm: sstable %s malformed index entry", path)
		}
		buf = buf[n:]
		var bm blockMeta
		bm.firstKey = append([]byte(nil), buf[:klen]...)
		buf = buf[klen:]
		bm.off, n = binary.Uvarint(buf)
		buf = buf[n:]
		bm.len, n = binary.Uvarint(buf)
		buf = buf[n:]
		bm.crc = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		r.index = append(r.index, bm)
	}
	nbits, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf[n:])) != (nbits+7)/8 {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable %s malformed bloom block", path)
	}
	r.bloom = bloomFilter{bits: buf[n:], nbits: nbits}
	return r, nil
}

// loadBlock reads and checksum-verifies one data block.
func (r *sstReader) loadBlock(i int) ([]byte, error) {
	bm := r.index[i]
	buf := make([]byte, bm.len)
	if _, err := r.f.ReadAt(buf, int64(bm.off)); err != nil {
		return nil, fmt.Errorf("lsm: read sstable block: %w", err)
	}
	if crc32.Checksum(buf, crcTable) != bm.crc {
		return nil, fmt.Errorf("lsm: sstable %s block %d checksum mismatch", r.f.Name(), i)
	}
	r.met.blockReads.Inc()
	return buf, nil
}

// blockFor returns the index of the last block whose first key is <= key,
// or -1 when key precedes the whole segment.
func (r *sstReader) blockFor(key []byte) int {
	return sort.Search(len(r.index), func(i int) bool {
		return bytes.Compare(r.index[i].firstKey, key) > 0
	}) - 1
}

// get returns the stored value (or tombstone) for key.
func (r *sstReader) get(key []byte) (val []byte, del, ok bool, err error) {
	if bytes.Compare(key, r.meta.Min) < 0 || bytes.Compare(key, r.meta.Max) > 0 {
		return nil, false, false, nil
	}
	r.met.bloomChecks.Inc()
	if !r.bloom.mayContain(key) {
		r.met.bloomSkips.Inc()
		return nil, false, false, nil
	}
	bi := r.blockFor(key)
	if bi < 0 {
		return nil, false, false, nil
	}
	block, err := r.loadBlock(bi)
	if err != nil {
		return nil, false, false, err
	}
	for cur := newBlockCursor(block); cur.next(); {
		switch bytes.Compare(cur.key, key) {
		case 0:
			return cur.val, cur.del, true, nil
		case 1:
			return nil, false, false, nil
		}
	}
	return nil, false, false, nil
}

// blockCursor walks the entries of one data block.
type blockCursor struct {
	buf  []byte
	key  []byte
	val  []byte
	del  bool
	fail error
}

func newBlockCursor(buf []byte) *blockCursor { return &blockCursor{buf: buf} }

func (c *blockCursor) next() bool {
	if len(c.buf) == 0 || c.fail != nil {
		return false
	}
	klen, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.fail = fmt.Errorf("lsm: malformed block entry")
		return false
	}
	c.buf = c.buf[n:]
	flag, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.fail = fmt.Errorf("lsm: malformed block entry")
		return false
	}
	c.buf = c.buf[n:]
	vlen := flag >> 1
	if uint64(len(c.buf)) < klen+vlen {
		c.fail = fmt.Errorf("lsm: truncated block entry")
		return false
	}
	c.key = c.buf[:klen]
	c.val = c.buf[klen : klen+vlen]
	c.del = flag&1 == 1
	c.buf = c.buf[klen+vlen:]
	return true
}

// sstIter streams a segment's entries in key order, starting at the first
// key >= lo (nil = from the start). The caller stops it by bound checks.
type sstIter struct {
	r     *sstReader
	bi    int
	cur   *blockCursor
	valid bool
	err   error
}

// iter positions an iterator at the first entry >= lo.
func (r *sstReader) iter(lo []byte) *sstIter {
	it := &sstIter{r: r, bi: 0}
	if lo != nil {
		if bi := r.blockFor(lo); bi > 0 {
			it.bi = bi
		}
	}
	it.advanceBlock()
	for it.valid && lo != nil && bytes.Compare(it.cur.key, lo) < 0 {
		it.next()
	}
	return it
}

func (it *sstIter) advanceBlock() {
	for it.bi < len(it.r.index) {
		block, err := it.r.loadBlock(it.bi)
		if err != nil {
			it.err, it.valid = err, false
			return
		}
		it.cur = newBlockCursor(block)
		it.bi++
		if it.cur.next() {
			it.valid = true
			return
		}
	}
	it.valid = false
}

func (it *sstIter) next() {
	if !it.valid {
		return
	}
	if it.cur.next() {
		return
	}
	if it.cur.fail != nil {
		it.err, it.valid = it.cur.fail, false
		return
	}
	it.advanceBlock()
}
