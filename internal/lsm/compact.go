package lsm

import (
	"bytes"
	"os"
	"path/filepath"
)

// Size-tiered compaction: segments are bucketed into size tiers (each tier
// covers a 4x size range above compactTierBase), and whenever an
// age-contiguous run of CompactFanIn same-tier segments exists, the run
// merges newest-wins into one segment a tier up. Only age-contiguous runs
// merge — without per-key versions, merging around an intervening segment
// with overlapping keys would let older data resurface. Tombstones drop
// only when the run includes the oldest segment (nothing beneath is left to
// mask).
const compactTierBase = 256 << 10

func sizeTier(size int64) int {
	t := 0
	for s := size; s >= compactTierBase*4; s /= 4 {
		t++
	}
	return t
}

// maybeCompactLocked runs compactions until no tier has a qualifying run.
// Callers hold db.mu.
func (db *DB) maybeCompactLocked() error {
	for {
		start, n := db.pickRun()
		if n == 0 {
			return nil
		}
		if err := db.compactRun(start, n); err != nil {
			return err
		}
	}
}

// pickRun finds the leftmost (oldest) age-contiguous run of at least
// CompactFanIn segments sharing a size tier.
func (db *DB) pickRun() (start, n int) {
	tables := db.man.Tables
	for i := 0; i < len(tables); {
		tier := sizeTier(tables[i].Size)
		j := i + 1
		for j < len(tables) && sizeTier(tables[j].Size) == tier {
			j++
		}
		if j-i >= db.opt.CompactFanIn {
			return i, j - i
		}
		i = j
	}
	return 0, 0
}

// compactRun merges tables [start, start+n) into one segment.
func (db *DB) compactRun(start, n int) error {
	in := db.tables[start : start+n]
	dropTombstones := start == 0
	// Newest-wins merge using the same source machinery scans use; input
	// index order must be newest first.
	it := &Iterator{}
	for i := n - 1; i >= 0; i-- {
		it.srcs = append(it.srcs, &sstSource{it: in[i].iter(nil)})
	}
	var entries []sstEntry
	for {
		// The scan Iterator skips tombstones; compaction must keep them
		// (unless merging at the bottom), so drive the merge manually.
		win := -1
		for i, s := range it.srcs {
			if e := s.err(); e != nil {
				return e
			}
			if !s.valid() {
				continue
			}
			if win < 0 || bytes.Compare(s.key(), it.srcs[win].key()) < 0 {
				win = i
			}
		}
		if win < 0 {
			break
		}
		k := append([]byte(nil), it.srcs[win].key()...)
		e := sstEntry{key: k, val: append([]byte(nil), it.srcs[win].val()...), del: it.srcs[win].del()}
		for _, s := range it.srcs {
			for s.valid() && bytes.Equal(s.key(), k) {
				s.next()
			}
		}
		if e.del && dropTombstones {
			continue
		}
		entries = append(entries, e)
	}

	oldMetas := append([]tableMeta(nil), db.man.Tables[start:start+n]...)
	newTables := append([]tableMeta(nil), db.man.Tables[:start]...)
	newReaders := append([]*sstReader(nil), db.tables[:start]...)
	var added *sstReader
	if len(entries) > 0 {
		num := db.man.NextFile
		tm, err := writeSSTable(db.dir, num, entries, db.opt.BlockBytes)
		if err != nil {
			return err
		}
		r, err := openSSTable(db.dir, tm)
		if err != nil {
			return err
		}
		r.refs.Store(1)
		r.met = db.met
		db.man.NextFile++
		newTables = append(newTables, tm)
		newReaders = append(newReaders, r)
		added = r
	}
	newTables = append(newTables, db.man.Tables[start+n:]...)
	newReaders = append(newReaders, db.tables[start+n:]...)
	savedTables := db.man.Tables
	db.man.Tables = newTables
	if err := db.man.save(db.dir); err != nil {
		db.man.Tables = savedTables
		if added != nil {
			added.unref()
		}
		return err
	}
	for _, r := range db.tables[start : start+n] {
		r.unref()
	}
	db.tables = newReaders
	// The manifest no longer references the inputs; unlink them. Snapshots
	// still holding references keep reading the open files.
	db.met.compactions.Inc()
	for _, tm := range oldMetas {
		db.met.compactBytes.Add(tm.Size)
		os.Remove(filepath.Join(db.dir, sstName(tm.Num)))
	}
	return nil
}
