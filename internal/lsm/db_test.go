package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func mustOpen(t *testing.T, dir string, opt Options) *DB {
	t.Helper()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// smallOpts forces frequent flushes/rotations so tests exercise every tier.
func smallOpts() Options {
	return Options{MemtableBytes: 4 << 10, WALSegmentBytes: 8 << 10, BlockBytes: 256, CompactFanIn: 3}
}

func TestDBBasicPutGetDelete(t *testing.T) {
	db := mustOpen(t, t.TempDir(), Options{})
	defer db.Close()
	if err := db.Put([]byte("k1"), []byte("v1"), true); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := db.Delete([]byte("k1"), true); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("k1")); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok, _ := db.Get([]byte("nope")); ok {
		t.Fatal("phantom key")
	}
}

// A randomized workload against an in-memory oracle, with flushes and
// compactions forced by tiny thresholds, then a reopen: the recovered state
// must equal the oracle exactly.
func TestDBRandomizedVsOracle(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, smallOpts())
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		if rng.Intn(4) == 0 {
			delete(oracle, k)
			if err := db.Delete([]byte(k), false); err != nil {
				t.Fatal(err)
			}
		} else {
			v := fmt.Sprintf("val-%d", i)
			oracle[k] = v
			if err := db.Put([]byte(k), []byte(v), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkOracle(t, db, oracle, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir, smallOpts())
	defer db2.Close()
	checkOracle(t, db2, oracle, "reopened")
}

func checkOracle(t *testing.T, db *DB, oracle map[string]string, when string) {
	t.Helper()
	for k, want := range oracle {
		v, ok, err := db.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != want {
			t.Fatalf("%s: key %s = %q/%v, want %q", when, k, v, ok, want)
		}
	}
	// Scan must visit exactly the oracle's keys, in order.
	sn := db.Snapshot()
	defer sn.Close()
	var got []string
	var prev []byte
	err := sn.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("%s: scan out of order: %q after %q", when, k, prev)
		}
		prev = append(prev[:0], k...)
		got = append(got, string(k))
		if oracle[string(k)] != string(v) {
			t.Fatalf("%s: scan %s = %q, want %q", when, k, v, oracle[string(k)])
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("%s: scan saw %d keys, oracle has %d", when, len(got), len(oracle))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, t.TempDir(), smallOpts())
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("old"), false)
	}
	sn := db.Snapshot()
	defer sn.Close()
	// Overwrite, delete, and flush under the snapshot.
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("new"), false)
	}
	db.Delete([]byte("k00"), false)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	sn.Scan(nil, nil, func(k, v []byte) bool {
		n++
		if string(v) != "old" {
			t.Fatalf("snapshot leaked new value for %s", k)
		}
		return true
	})
	if n != 50 {
		t.Fatalf("snapshot scan saw %d keys, want 50", n)
	}
	if v, ok, _ := sn.Get([]byte("k00")); !ok || string(v) != "old" {
		t.Fatal("snapshot lost deleted key's old value")
	}
}

func TestScanRange(t *testing.T) {
	db := mustOpen(t, t.TempDir(), Options{})
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)}, false)
	}
	sn := db.Snapshot()
	defer sn.Close()
	var got []string
	sn.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	n := 0
	sn.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestCompactionReducesSegments(t *testing.T) {
	db := mustOpen(t, t.TempDir(), smallOpts())
	defer db.Close()
	// Write far more than the memtable bound with heavy overwrites, forcing
	// many flushes; compaction must keep the segment count bounded.
	for i := 0; i < 8000; i++ {
		k := fmt.Sprintf("key-%03d", i%111)
		if err := db.Put([]byte(k), bytes.Repeat([]byte{byte(i)}, 32), false); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Tables > 8 {
		t.Fatalf("compaction left %d segments", st.Tables)
	}
	// All 111 live keys survive the merges.
	sn := db.Snapshot()
	defer sn.Close()
	n := 0
	sn.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 111 {
		t.Fatalf("scan after compaction saw %d keys, want 111", n)
	}
}

func TestBatchAtomicityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, Options{})
	b := NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("b%d", i)), []byte("x"))
	}
	if err := db.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir, Options{})
	defer db2.Close()
	for i := 0; i < 10; i++ {
		if _, ok, _ := db2.Get([]byte(fmt.Sprintf("b%d", i))); !ok {
			t.Fatalf("batch key b%d lost", i)
		}
	}
}

func TestTombstonesMaskOlderSegments(t *testing.T) {
	db := mustOpen(t, t.TempDir(), smallOpts())
	defer db.Close()
	db.Put([]byte("gone"), []byte("v"), false)
	if err := db.Flush(); err != nil { // "gone" now lives in a segment
		t.Fatal(err)
	}
	db.Delete([]byte("gone"), false)
	if err := db.Flush(); err != nil { // tombstone in a newer segment
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("gone")); ok {
		t.Fatal("tombstone failed to mask older segment")
	}
	sn := db.Snapshot()
	defer sn.Close()
	sn.Scan(nil, nil, func(k, v []byte) bool {
		if string(k) == "gone" {
			t.Fatal("scan resurrected a deleted key")
		}
		return true
	})
}
