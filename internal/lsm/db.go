package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"orchestra/internal/obs"
)

// Options tunes a DB. The zero value is valid.
type Options struct {
	// MemtableBytes flushes the memtable to an SSTable segment once its
	// resident size passes this bound. Default 4 MiB.
	MemtableBytes int
	// WALSegmentBytes rotates the active WAL segment past this size, so a
	// crash replays a bounded suffix. Default 8 MiB.
	WALSegmentBytes int64
	// BlockBytes is the SSTable data-block split threshold. Default 4 KiB.
	BlockBytes int
	// CompactFanIn merges an age-contiguous run of this many same-tier
	// segments into one. Default 4.
	CompactFanIn int
	// NoSync skips the per-commit fsync (rotation and flush still sync).
	// Benchmarks and tests that only need crash-consistency of flushed
	// state use it; durable deployments must not.
	NoSync bool
	// Metrics, when non-nil, receives lsm_* counters and the WAL fsync
	// latency histogram. Nil disables recording at nil-check cost.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = 8 << 20
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 4096
	}
	if o.CompactFanIn < 2 {
		o.CompactFanIn = 4
	}
	return o
}

// DB is a single-directory log-structured store: one WAL, one mutable
// memtable, frozen memtables awaiting flush, and a stack of SSTable
// segments (oldest first). All methods are safe for concurrent use; writes
// and structural changes serialize on one mutex, which is the group-commit
// point — a Batch is the unit of atomicity and of fsync.
type DB struct {
	mu     sync.Mutex
	dir    string
	opt    Options
	man    *manifest
	wal    *wal
	mut    *memtable
	imm    []*memtable  // frozen, oldest first
	tables []*sstReader // oldest first, parallel to man.Tables
	met    dbMetrics
	closed bool
	// broken latches a failed flush/compaction: the on-disk state is still
	// consistent (the manifest only ever swaps atomically) but the in-memory
	// view may not match, so further writes are refused.
	broken error
}

// ref-counted reader lifetime: the DB owns one reference per live table,
// snapshots take another while they exist, and the file closes when the
// last reference drops — so compaction can unlink segment files while
// older snapshots still scan them.
func (r *sstReader) ref() { r.refs.Add(1) }

func (r *sstReader) unref() {
	if r.refs.Add(-1) == 0 {
		r.f.Close()
	}
}

// Open opens (or creates) a DB in dir, recovering from the manifest and
// replaying the WAL suffix. A torn record at the tail of the final WAL
// segment — the signature of a crash mid-append — is truncated away with a
// warning; corruption anywhere else fails the open.
func Open(dir string, opt Options) (*DB, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: create db dir: %w", err)
	}
	man, _, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opt: opt, man: man, mut: newMemtable(), met: newDBMetrics(opt.Metrics)}
	for _, tm := range man.Tables {
		r, err := openSSTable(dir, tm)
		if err != nil {
			db.closeTables()
			return nil, err
		}
		r.refs.Store(1)
		r.met = db.met
		db.tables = append(db.tables, r)
	}
	seqs, err := listWALs(dir)
	if err != nil {
		db.closeTables()
		return nil, err
	}
	var replay []uint64
	maxSeq := man.WALFloor
	for _, s := range seqs {
		if s >= man.WALFloor {
			replay = append(replay, s)
		} else {
			// Fully flushed before the crash; remove the leftover.
			os.Remove(filepath.Join(dir, walName(s)))
		}
		if s > maxSeq {
			maxSeq = s
		}
	}
	if err := replayWAL(dir, replay, func(payload []byte) error {
		return applyEncodedBatch(db.mut, payload)
	}); err != nil {
		db.closeTables()
		return nil, err
	}
	// Append to a fresh segment rather than the possibly-truncated tail; the
	// replayed segments stay on disk until the next flush advances the floor
	// past them.
	db.wal, err = openWAL(dir, maxSeq+1, opt.WALSegmentBytes)
	if err != nil {
		db.closeTables()
		return nil, err
	}
	return db, nil
}

func (db *DB) closeTables() {
	for _, r := range db.tables {
		r.unref()
	}
	db.tables = nil
}

// Close flushes the memtable and releases the DB.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var firstErr error
	if db.broken == nil {
		if err := db.flushLocked(); err != nil {
			firstErr = err
		}
	}
	if err := db.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	db.closeTables()
	return firstErr
}

// Dir returns the DB directory.
func (db *DB) Dir() string { return db.dir }

// Batch is an ordered set of writes applied and logged atomically: one WAL
// record, one checksum, at most one fsync.
type Batch struct {
	ops     []batchOp
	payload int
}

type batchOp struct {
	key []byte
	val []byte
	del bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put schedules a write. The byte slices are retained until Apply.
func (b *Batch) Put(key, val []byte) {
	b.ops = append(b.ops, batchOp{key: key, val: val})
	b.payload += len(key) + len(val) + 16
}

// Delete schedules a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: key, del: true})
	b.payload += len(key) + 16
}

// Len returns the number of scheduled operations.
func (b *Batch) Len() int { return len(b.ops) }

const (
	opPut = 1
	opDel = 2
)

func (b *Batch) encode() []byte {
	out := make([]byte, 0, b.payload)
	for _, op := range b.ops {
		if op.del {
			out = append(out, opDel)
			out = binary.AppendUvarint(out, uint64(len(op.key)))
			out = append(out, op.key...)
			continue
		}
		out = append(out, opPut)
		out = binary.AppendUvarint(out, uint64(len(op.key)))
		out = append(out, op.key...)
		out = binary.AppendUvarint(out, uint64(len(op.val)))
		out = append(out, op.val...)
	}
	return out
}

// applyEncodedBatch replays one WAL payload into a memtable.
func applyEncodedBatch(m *memtable, payload []byte) error {
	for len(payload) > 0 {
		op := payload[0]
		payload = payload[1:]
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return fmt.Errorf("lsm: malformed wal batch")
		}
		key := payload[n : n+int(klen)]
		payload = payload[n+int(klen):]
		switch op {
		case opDel:
			m.set(key, nil, true)
		case opPut:
			vlen, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload[n:])) < vlen {
				return fmt.Errorf("lsm: malformed wal batch")
			}
			m.set(key, append([]byte(nil), payload[n:n+int(vlen)]...), false)
			payload = payload[n+int(vlen):]
		default:
			return fmt.Errorf("lsm: unknown wal batch op %d", op)
		}
	}
	return nil
}

// Apply commits the batch: logged to the WAL (fsynced when sync is true and
// the DB syncs), then applied to the memtable. Group commit happens
// naturally when callers assemble many logical writes into one batch — the
// published-update store batches a whole PublishAll window this way.
func (db *DB) Apply(b *Batch, sync bool) error {
	if b.Len() == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usable(); err != nil {
		return err
	}
	payload := b.encode()
	if err := db.wal.append(payload); err != nil {
		return err
	}
	db.met.walAppends.Inc()
	db.met.walBytes.Add(int64(len(payload)))
	if sync && !db.opt.NoSync {
		var start time.Time
		if db.met.fsyncNs != nil {
			start = time.Now()
		}
		if err := db.wal.sync(); err != nil {
			return err
		}
		if db.met.fsyncNs != nil {
			db.met.fsyncNs.Observe(time.Since(start).Nanoseconds())
		}
	}
	for _, op := range b.ops {
		if op.del {
			db.mut.set(op.key, nil, true)
		} else {
			db.mut.set(op.key, append([]byte(nil), op.val...), false)
		}
	}
	return db.maybeFlushLocked()
}

// Put writes one key (a one-op batch).
func (db *DB) Put(key, val []byte, sync bool) error {
	b := NewBatch()
	b.Put(key, val)
	return db.Apply(b, sync)
}

// Delete tombstones one key (a one-op batch).
func (db *DB) Delete(key []byte, sync bool) error {
	b := NewBatch()
	b.Delete(key)
	return db.Apply(b, sync)
}

func (db *DB) usable() error {
	if db.closed {
		return fmt.Errorf("lsm: db is closed")
	}
	if db.broken != nil {
		return fmt.Errorf("lsm: db failed a structural operation and is read-only: %w", db.broken)
	}
	return nil
}

// Get returns the current value of key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, fmt.Errorf("lsm: db is closed")
	}
	db.met.gets.Inc()
	if e, ok := db.mut.get(key); ok {
		return getEntry(e)
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if e, ok := db.imm[i].get(key); ok {
			return getEntry(e)
		}
	}
	for i := len(db.tables) - 1; i >= 0; i-- {
		val, del, ok, err := db.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if del {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

func getEntry(e *mentry) ([]byte, bool, error) {
	if e.del {
		return nil, false, nil
	}
	return e.val, true, nil
}

// maybeFlushLocked flushes when the memtable passes its bound, and rotates
// an oversized WAL segment otherwise.
func (db *DB) maybeFlushLocked() error {
	if db.mut.bytes >= db.opt.MemtableBytes {
		return db.flushLocked()
	}
	if db.wal.full() {
		// Rotation alone doesn't advance the WAL floor — the data is still
		// only in the memtable — but it bounds single-segment replay cost.
		if err := db.wal.rotate(); err != nil {
			db.broken = err
			return err
		}
	}
	return nil
}

// Flush forces the memtable (and any frozen predecessors) into an SSTable
// segment and advances the WAL floor past their log records. Callers use it
// as a checkpoint barrier: once Flush returns, recovery cost for the
// flushed data is a manifest read, not a log replay.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usable(); err != nil {
		return err
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if err := db.doFlush(); err != nil {
		db.broken = err
		return err
	}
	if err := db.maybeCompactLocked(); err != nil {
		db.broken = err
		return err
	}
	return nil
}

func (db *DB) doFlush() error {
	if db.mut.len() > 0 {
		db.imm = append(db.imm, db.mut)
		db.mut = newMemtable()
	}
	if len(db.imm) == 0 {
		return nil
	}
	// New writes land in a fresh WAL segment; everything frozen lives in
	// segments before it, so the floor can advance there after the flush.
	if err := db.wal.rotate(); err != nil {
		return err
	}
	floor := db.wal.seq
	// Newest-wins merge across the frozen memtables.
	merged := map[string]*mentry{}
	for _, m := range db.imm {
		for k, e := range m.index {
			merged[k] = e
		}
	}
	entries := make([]sstEntry, 0, len(merged))
	for _, e := range merged {
		if e.del && len(db.tables) == 0 {
			// Nothing older to mask: the tombstone is already meaningless.
			continue
		}
		entries = append(entries, sstEntry{key: []byte(e.key), val: e.val, del: e.del})
	}
	sortEntries(entries)
	if len(entries) > 0 {
		num := db.man.NextFile
		tm, err := writeSSTable(db.dir, num, entries, db.opt.BlockBytes)
		if err != nil {
			return err
		}
		r, err := openSSTable(db.dir, tm)
		if err != nil {
			return err
		}
		r.refs.Store(1)
		r.met = db.met
		db.man.NextFile++
		db.man.Tables = append(db.man.Tables, tm)
		db.man.WALFloor = floor
		if err := db.man.save(db.dir); err != nil {
			r.unref()
			return err
		}
		db.tables = append(db.tables, r)
		db.met.flushes.Inc()
	} else {
		db.man.WALFloor = floor
		if err := db.man.save(db.dir); err != nil {
			return err
		}
	}
	db.imm = nil
	db.removeOldWALs(floor)
	return nil
}

// sortEntries orders flush/compaction output; keys are unique post-merge,
// so an unstable sort is fine.
func sortEntries(entries []sstEntry) {
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
}

func (db *DB) removeOldWALs(floor uint64) {
	seqs, err := listWALs(db.dir)
	if err != nil {
		return
	}
	for _, s := range seqs {
		if s < floor {
			os.Remove(filepath.Join(db.dir, walName(s)))
		}
	}
}

// Stats reports coarse engine state for tests and tooling.
type Stats struct {
	MemtableBytes   int
	FrozenMemtables int
	Tables          int
	TableBytes      int64
	WALSegment      uint64
}

// Stats returns a point-in-time snapshot of engine internals.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := Stats{
		MemtableBytes:   db.mut.bytes,
		FrozenMemtables: len(db.imm),
		Tables:          len(db.tables),
		WALSegment:      db.wal.seq,
	}
	for _, t := range db.man.Tables {
		st.TableBytes += t.Size
	}
	return st
}
