package lsm

import "sort"

// memtable is the mutable in-memory tier: a hash index over entries
// allocated from contiguous fixed-capacity slabs, the same address-stable
// layout the datalog union shards use (PR 5). Appends never move existing
// entries, so the index holds stable pointers and a freeze is free — the
// slabs are simply never written again. Ordering is deferred to flush/scan
// time, when sortedEntries sorts the index keys once.
type memtable struct {
	index map[string]*mentry
	slabs [][]mentry
	// bytes approximates resident size (keys + values) to trigger flushes.
	bytes int
}

// mentry is one keyed write. del marks a tombstone (masking any older
// value of the key in lower tiers).
type mentry struct {
	key string
	val []byte
	del bool
}

const memSlabSize = 256

func newMemtable() *memtable {
	return &memtable{index: map[string]*mentry{}}
}

func (m *memtable) len() int { return len(m.index) }

// set records a put (del=false) or delete (del=true). The latest write to a
// key wins in place; slab entries of overwritten versions stay allocated
// until flush, matching the slab layout's remove-by-zeroing discipline.
func (m *memtable) set(key []byte, val []byte, del bool) {
	k := string(key)
	if e, ok := m.index[k]; ok {
		m.bytes += len(val) - len(e.val)
		e.val = val
		e.del = del
		return
	}
	n := len(m.slabs)
	if n == 0 || len(m.slabs[n-1]) == cap(m.slabs[n-1]) {
		m.slabs = append(m.slabs, make([]mentry, 0, memSlabSize))
		n++
	}
	slab := &m.slabs[n-1]
	*slab = append(*slab, mentry{key: k, val: val, del: del})
	m.index[k] = &(*slab)[len(*slab)-1]
	m.bytes += len(k) + len(val) + 48
}

// get returns the entry for key, if any.
func (m *memtable) get(key []byte) (*mentry, bool) {
	e, ok := m.index[string(key)]
	return e, ok
}

// sortedEntries returns the live entries in ascending key order. Keys are
// encoded with the order-preserving codec, so plain string order is tuple
// order.
func (m *memtable) sortedEntries() []*mentry {
	out := make([]*mentry, 0, len(m.index))
	for _, e := range m.index {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
