package lsm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The crash harness: build a WAL of synced batches, then — per trial — copy
// the directory, cut the final segment at a randomized byte offset, and
// reopen. The recovered state must equal the state after the last batch
// whose frame fully survives the cut: the longest durable prefix, nothing
// more, nothing less.

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// frameEnds returns the cumulative byte offset of each complete frame end
// in one WAL segment.
func frameEnds(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int
	off := 0
	for off+walHeaderLen <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+walHeaderLen+n > len(data) {
			break
		}
		off += walHeaderLen + n
		ends = append(ends, off)
	}
	return ends
}

func TestWALRandomizedCutRecovery(t *testing.T) {
	src := t.TempDir()
	db := mustOpen(t, src, Options{}) // large memtable: everything stays in the WAL
	const batches = 40
	for i := 1; i <= batches; i++ {
		b := NewBatch()
		b.Put([]byte("seq"), []byte(fmt.Sprintf("%d", i)))
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		if i%3 == 0 {
			b.Delete([]byte(fmt.Sprintf("k%02d", i-1)))
		}
		if err := db.Apply(b, true); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: the DB is abandoned without Close (no flush); all
	// durable state is the synced WAL.
	seqs, err := listWALs(src)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("want one wal segment, got %v (%v)", seqs, err)
	}
	walPath := filepath.Join(src, walName(seqs[0]))
	ends := frameEnds(t, walPath)
	if len(ends) != batches {
		t.Fatalf("found %d frames, want %d", len(ends), batches)
	}
	size := ends[len(ends)-1]

	rng := rand.New(rand.NewSource(99))
	cuts := []int{0, 1, walHeaderLen - 1, walHeaderLen, size - 1, size}
	for len(cuts) < 30 {
		cuts = append(cuts, rng.Intn(size))
	}
	for _, cut := range cuts {
		dst := t.TempDir()
		copyDir(t, src, dst)
		if err := os.Truncate(filepath.Join(dst, walName(seqs[0])), int64(cut)); err != nil {
			t.Fatal(err)
		}
		// Expected prefix: every batch whose frame ends at or before the cut.
		survived := 0
		for _, e := range ends {
			if e <= cut {
				survived++
			}
		}
		re, err := Open(dst, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		v, ok, err := re.Get([]byte("seq"))
		if err != nil {
			t.Fatal(err)
		}
		if survived == 0 {
			if ok {
				t.Fatalf("cut %d: expected empty recovery, got seq=%s", cut, v)
			}
		} else if !ok || string(v) != fmt.Sprintf("%d", survived) {
			t.Fatalf("cut %d: recovered seq=%q/%v, want %d", cut, v, ok, survived)
		}
		// A batch is all-or-nothing: its second key must agree with seq.
		for i := 1; i <= batches; i++ {
			_, ok, _ := re.Get([]byte(fmt.Sprintf("k%02d", i)))
			want := i <= survived && !(i%3 == 2 && i+1 <= survived) // deleted by batch i+1 when i+1 ≡ 0 mod 3
			if ok != want {
				t.Fatalf("cut %d: k%02d present=%v, want %v (survived=%d)", cut, i, ok, want, survived)
			}
		}
		// The torn tail was truncated: a second reopen replays cleanly.
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, err := Open(dst, Options{})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		re2.Close()
	}
}

// A cut in the final segment of a multi-segment WAL recovers; the earlier,
// fully-synced segments replay in full.
func TestWALMultiSegmentTailCut(t *testing.T) {
	src := t.TempDir()
	opt := Options{WALSegmentBytes: 512, MemtableBytes: 1 << 30}
	db := mustOpen(t, src, opt)
	for i := 1; i <= 60; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), true); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listWALs(src)
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want multiple segments, got %v (%v)", seqs, err)
	}
	last := filepath.Join(src, walName(seqs[len(seqs)-1]))
	st, _ := os.Stat(last)

	dst := t.TempDir()
	copyDir(t, src, dst)
	if err := os.Truncate(filepath.Join(dst, walName(seqs[len(seqs)-1])), st.Size()/2); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dst, opt)
	if err != nil {
		t.Fatalf("reopen after tail cut: %v", err)
	}
	defer re.Close()
	// Everything in the earlier segments must be present.
	lastSegEnds := frameEnds(t, filepath.Join(dst, walName(seqs[len(seqs)-1])))
	survivedInLast := len(lastSegEnds)
	total := 0
	sn := re.Snapshot()
	defer sn.Close()
	sn.Scan(nil, nil, func(k, v []byte) bool { total++; return true })
	if total < 60-(survivedInLast+20) || total > 60 {
		t.Fatalf("recovered %d keys out of 60 (last segment kept %d frames)", total, survivedInLast)
	}
}

// Corruption before the tail is NOT recoverable silently — it must fail the
// open, never drop committed middle records.
func TestWALMidLogCorruptionFailsOpen(t *testing.T) {
	src := t.TempDir()
	opt := Options{WALSegmentBytes: 512, MemtableBytes: 1 << 30}
	db := mustOpen(t, src, opt)
	for i := 1; i <= 60; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), true); err != nil {
			t.Fatal(err)
		}
	}
	seqs, _ := listWALs(src)
	if len(seqs) < 2 {
		t.Fatalf("want multiple segments, got %v", seqs)
	}
	dst := t.TempDir()
	copyDir(t, src, dst)
	// Flip a payload byte in the FIRST segment.
	first := filepath.Join(dst, walName(seqs[0]))
	data, _ := os.ReadFile(first)
	data[walHeaderLen+2] ^= 0xFF
	os.WriteFile(first, data, 0o644)
	if _, err := Open(dst, opt); err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	}
}
