package orchestra_test

// One benchmark per experiment in DESIGN.md §2 (E1–E7). The same workloads
// back cmd/orchestra-bench, which prints the EXPERIMENTS.md tables with
// absolute times; these testing.B entry points give ns/op and allocation
// profiles:
//
//	go test -bench=. -benchmem
//
// Benchmark sizes are kept laptop-scale; use cmd/orchestra-bench -full for
// the larger sweeps.

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/experiments"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
	"orchestra/internal/workload"

	"orchestra/internal/core"
)

// BenchmarkE1UpdateExchangeInsertions measures incremental translation of
// published insertions through the 4-peer join/split chain (E1; the
// VLDB'07 incremental-insertion experiment shape). One engine is shared
// across iterations — per-insert cost is flat in instance size (see
// EXPERIMENTS.md E1), so amortizing setup does not distort the figure.
func BenchmarkE1UpdateExchangeInsertions(b *testing.B) {
	eng, stream, err := experiments.BuildInsertWorkload(20, 5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.ApplyStream(eng, stream); err != nil {
		b.Fatal(err)
	}
	seq := uint64(10000)
	key := int64(1 << 40) // fresh key space, disjoint from the seed data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := &updates.Transaction{ID: updates.TxnID{Peer: "p00", Seq: seq}}
		for j := 0; j < 5; j++ {
			txn.Updates = append(txn.Updates,
				updates.Insert("S", workload.STuple(key, key, workload.Sequence(key, key))))
			key++
		}
		seq++
		if _, err := eng.Apply(context.Background(), txn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2IncrementalVsFull compares incremental delta propagation with
// full recomputation on the Figure 2 CDSS (E2).
func BenchmarkE2IncrementalVsFull(b *testing.B) {
	const base = 400
	b.Run("incremental-delta4", func(b *testing.B) {
		eng, seq, err := experiments.BuildFig2Engine(base)
		if err != nil {
			b.Fatal(err)
		}
		key := int64(1 << 40)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var delta []*updates.Transaction
			for j := 0; j < 4; j++ {
				delta = append(delta, &updates.Transaction{
					ID: updates.TxnID{Peer: workload.Alaska, Seq: seq},
					Updates: []updates.Update{
						updates.Insert("S", workload.STuple(key, key, "ACGT"))},
				})
				seq++
				key++
			}
			if _, err := experiments.ApplyStream(eng, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		eng, _, err := experiments.BuildFig2Engine(base)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Recompute(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3DeletionPropagation measures provenance-based deletion (E3):
// each iteration inserts a fresh joinable tuple and measures retracting it
// through the mappings.
func BenchmarkE3DeletionPropagation(b *testing.B) {
	eng, seq, err := experiments.BuildFig2Engine(100)
	if err != nil {
		b.Fatal(err)
	}
	key := int64(1 << 40)
	for i := 0; i < b.N; i++ {
		tu := workload.STuple(key, key, "ACGT")
		ins := &updates.Transaction{ID: updates.TxnID{Peer: workload.Alaska, Seq: seq},
			Updates: []updates.Update{updates.Insert("S", tu)}}
		seq++
		b.StopTimer()
		if _, err := eng.Apply(context.Background(), ins); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		del := &updates.Transaction{ID: updates.TxnID{Peer: workload.Alaska, Seq: seq},
			Updates: []updates.Update{updates.Delete("S", tu)}}
		seq++
		key++
		if _, err := eng.Apply(context.Background(), del); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4ProvenanceOverhead isolates annotation bookkeeping cost on an
// acyclic 3-way join (E4): none vs. witness-set B[X] vs. exact N[X].
func BenchmarkE4ProvenanceOverhead(b *testing.B) {
	const n = 2000
	prog, edb, err := experiments.BuildJoinEDB(n)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts datalog.Options
	}{
		{"none", datalog.Options{}},
		{"witness", datalog.Options{Provenance: true}},
		{"exact", datalog.Options{Provenance: true, Exact: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(prog, edb, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinOrderPlanner isolates the greedy join-order planner on the
// 3-way mapping join (the E4 workload): default greedy ordering vs.
// NoReorder (atoms joined in written order), with and without provenance.
func BenchmarkJoinOrderPlanner(b *testing.B) {
	const n = 2000
	prog, edb, err := experiments.BuildJoinEDB(n)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts datalog.Options
	}{
		{"greedy", datalog.Options{}},
		{"noreorder", datalog.Options{NoReorder: true}},
		{"greedy-witness", datalog.Options{Provenance: true}},
		{"noreorder-witness", datalog.Options{Provenance: true, NoReorder: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(prog, edb, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinOrderSelectiveConstant is the pattern the greedy planner
// exists for: a badly-written rule whose most selective atom — a constant
// pattern on the protein dimension — appears last. Written order scans the
// whole fact table; greedy starts from the constant.
func BenchmarkJoinOrderSelectiveConstant(b *testing.B) {
	const n = 2000
	_, edb, err := experiments.BuildJoinEDB(n)
	if err != nil {
		b.Fatal(err)
	}
	prog := &datalog.Program{Rules: []datalog.Rule{{
		ID:   "sel",
		Head: datalog.NewHead("Hits", datalog.HV("onm"), datalog.HV("seq")),
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("a.S", datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
			datalog.Pos(datalog.NewAtom("a.O", datalog.V("onm"), datalog.V("oid"))),
			datalog.Pos(datalog.NewAtom("a.P", datalog.C(schema.String(workload.Protein(3))), datalog.V("pid"))),
		},
	}}}
	for _, m := range []struct {
		name string
		opts datalog.Options
	}{
		{"greedy", datalog.Options{}},
		{"noreorder", datalog.Options{NoReorder: true}},
	} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(prog, edb, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Reconciliation measures the greedy reconciliation algorithm
// against transaction count and conflict rate (E5; SIGMOD'06 shape).
func BenchmarkE5Reconciliation(b *testing.B) {
	for _, n := range []int{100, 500} {
		for _, rate := range []float64{0, 0.5} {
			b.Run(fmt.Sprintf("txns=%d/conflict=%.0f%%", 2*n, rate*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					st, mixed := experiments.BuildReconWorkload(n, rate)
					b.StartTimer()
					if _, err := st.Reconcile(recon.TrustAll(1), mixed); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE6Topologies sweeps mapping topologies (E6).
func BenchmarkE6Topologies(b *testing.B) {
	kinds := []struct {
		name  string
		build func(int) *workload.Topology
	}{
		{"chain", workload.Chain},
		{"star", workload.Star},
		{"mesh", workload.Mesh},
	}
	for _, k := range kinds {
		for _, n := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s-%dpeers", k.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					topo := k.build(n)
					sys, err := core.NewSystem(topo.Peers, topo.Mappings)
					if err != nil {
						b.Fatal(err)
					}
					store := p2p.NewMemoryStore()
					origin, err := core.NewPeer(topo.Names[0], sys, store, recon.TrustAll(1))
					if err != nil {
						b.Fatal(err)
					}
					sink, err := core.NewPeer(topo.Names[len(topo.Names)-1], sys, store, recon.TrustAll(1))
					if err != nil {
						b.Fatal(err)
					}
					tx := origin.NewTransaction()
					for j := int64(0); j < 20; j++ {
						tx.Insert("S", workload.STuple(j, j, workload.Sequence(j, j)))
					}
					if _, err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					if _, err := origin.Publish(context.Background()); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := sink.Reconcile(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE7WitnessBound ablates the witness-set bound on a small identity
// mesh (E7): bounded annotations vs. unbounded blowup.
func BenchmarkE7WitnessBound(b *testing.B) {
	for _, bound := range []int{1, 8, 0} {
		name := fmt.Sprintf("max=%d", bound)
		if bound == 0 {
			name = "max=unbounded"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.E7WitnessBound(3, 15, []int{bound}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublishReconcileRoundTrip measures the end-to-end peer lifecycle
// on the Figure 2 CDSS: commit + publish at Alaska, reconcile at Dresden.
func BenchmarkPublishReconcileRoundTrip(b *testing.B) {
	sys, err := core.NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		b.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	alaska, err := core.NewPeer(workload.Alaska, sys, store, recon.TrustAll(1))
	if err != nil {
		b.Fatal(err)
	}
	dresden, err := core.NewPeer(workload.Dresden, sys, store, recon.TrustAll(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i)
		tx := alaska.NewTransaction().
			Insert("O", workload.OTuple(workload.Organism(i), k)).
			Insert("P", workload.PTuple(workload.Protein(i), k)).
			Insert("S", workload.STuple(k, k, workload.Sequence(k, k)))
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if _, err := alaska.Publish(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := dresden.Reconcile(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
